"""`ScheduleIRCache` correctness: keys, sharing, and sweep equivalence.

The structural build cache may only ever return the IR that the exact
same build inputs would have produced -- so the suite checks that cache
keys separate every axis of the candidate space (schedule, recompute,
micro-batch count, each option grid point), that warm sweeps served
from a shared cache are bit-identical to cold ones, that incremental
re-simulation and parallel workers agree with the plain serial path,
and that the LRU bounds hold.
"""

import pytest

from repro.costmodel.memory import RecomputeStrategy
from repro.schedules.ir import Schedule
from repro.tuner import (
    CostCache,
    ScheduleIRCache,
    SweepTelemetry,
    autotune,
    enumerate_candidates,
    tune_grid,
)
from repro.workloads import Workload, WorkloadGrid

WL = Workload.paper("1.3B", "H20", 4, 8192)


def _ir_key(cand, wkey=("w",), cap=1.0):
    """The structural key `_EvalContext.build_schedule` uses."""
    return (
        wkey,
        cap,
        cand.schedule,
        cand.recompute.value,
        cand.num_micro_batches,
        cand.options,
    )


def _rows(**kw):
    kw.setdefault("cache", CostCache())
    return autotune(WL, **kw)


class TestKeys:
    def test_no_structural_collisions_across_the_grid(self):
        # Every enumerated candidate -- including every option-grid
        # point -- must map to its own cache slot.
        cands = enumerate_candidates(WL)
        keys = {_ir_key(c) for c in cands}
        assert len(keys) == len(cands)

    def test_recompute_separates_keys(self):
        cands = enumerate_candidates(WL, schedules=["helix"])
        by_rest = {}
        for c in cands:
            rest = (c.schedule, c.num_micro_batches, c.options)
            by_rest.setdefault(rest, set()).add(_ir_key(c))
        for rest, keys in by_rest.items():
            # One key per recompute strategy of the family.
            n_rc = len({c.recompute for c in cands
                        if (c.schedule, c.num_micro_batches, c.options) == rest})
            assert len(keys) == n_rc, rest

    def test_workload_and_cap_separate_keys(self):
        c = enumerate_candidates(WL)[0]
        assert _ir_key(c, wkey=("a",)) != _ir_key(c, wkey=("b",))
        assert _ir_key(c, cap=1.0) != _ir_key(c, cap=2.0)


class TestCacheMechanics:
    def test_get_put_roundtrip_and_counters(self):
        cache = ScheduleIRCache()
        sched = Schedule("t", 1, 1, [[]])
        assert cache.get(("k",)) is None
        cache.put(("k",), sched)
        assert cache.get(("k",)) is sched
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_bounds_both_stores(self):
        cache = ScheduleIRCache(max_schedules=2, max_references=1)
        for i in range(5):
            cache.put((i,), Schedule(f"s{i}", 1, 1, [[]]))
        assert len(cache) == 2
        assert cache.get((4,)) is not None  # newest survives
        assert cache.get((0,)) is None  # oldest evicted

    def test_lru_recency_order(self):
        cache = ScheduleIRCache(max_schedules=2)
        a, b, c = (Schedule(n, 1, 1, [[]]) for n in "abc")
        cache.put(("a",), a)
        cache.put(("b",), b)
        cache.get(("a",))  # refresh a: b is now the eviction victim
        cache.put(("c",), c)
        assert cache.get(("a",)) is a
        assert cache.get(("b",)) is None

    def test_clear(self):
        cache = ScheduleIRCache()
        cache.put(("k",), Schedule("t", 1, 1, [[]]))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            ScheduleIRCache(max_schedules=0)
        with pytest.raises(ValueError):
            ScheduleIRCache(max_references=0)


class TestSweepEquivalence:
    def test_incremental_off_is_bit_identical(self):
        assert _rows() == _rows(incremental=False)

    def test_no_ir_cache_warm_rerun_is_bit_identical(self):
        # Same private cache across two sweeps: the second run is served
        # from warm IR yet must reproduce the cold rows exactly.
        shared = ScheduleIRCache()
        tel = SweepTelemetry()
        cold = _rows(ir_cache=shared, telemetry=tel)
        hits_after_cold = shared.hits
        warm = _rows(ir_cache=shared, telemetry=tel)
        assert warm == cold
        assert shared.hits > hits_after_cold

    def test_parallel_equals_serial(self):
        serial = _rows()
        parallel = _rows(workers=2)
        assert parallel == serial

    def test_shared_cache_across_recomputes_no_false_hits(self):
        # A cache warmed by one recompute strategy must never serve
        # another strategy's build: sweeping them together from one
        # cache must match sweeping each alone without any cache.
        shared = ScheduleIRCache()
        together = _rows(
            schedules=["helix"],
            recomputes=[RecomputeStrategy.NONE,
                        RecomputeStrategy.WITHOUT_ATTENTION],
            ir_cache=shared,
        )
        for rc in (RecomputeStrategy.NONE, RecomputeStrategy.WITHOUT_ATTENTION):
            alone = _rows(schedules=["helix"], recomputes=[rc],
                          ir_cache=None, incremental=False)
            for row in alone:
                assert row in together, row.label


class TestTelemetry:
    def test_counters_are_consistent(self):
        tel = SweepTelemetry()
        rows = _rows(telemetry=tel)
        assert tel.candidates == len(rows)
        assert tel.built > 0
        assert tel.simulated > 0
        assert tel.build_cache_hits == 0  # fresh private cache
        assert tel.incremental_fallbacks == 0
        assert tel.eval_s >= tel.build_s + tel.simulate_s - 1e-9
        snap = tel.as_dict()
        assert snap["built"] == tel.built
        assert snap["cache_s"] == tel.cache_s
        tel.reset()
        assert tel.built == 0 and tel.eval_s == 0.0 and tel.as_dict()["cache_s"] == 0.0


class TestGridSharing:
    def test_tune_grid_shares_one_cache_across_points(self):
        grid = WorkloadGrid(
            seq_lens=(8192,), pipeline_sizes=(2, 4), budget_tokens=1 << 16
        )
        shared = ScheduleIRCache()
        first = tune_grid(grid, cache=CostCache(), ir_cache=shared)
        misses_after_first = shared.misses
        # Re-sweeping the same grid through the same cache hits for
        # every build and changes nothing in the ranking.
        second = tune_grid(grid, cache=CostCache(), ir_cache=shared)
        assert [r.label for r in second] == [r.label for r in first]
        assert shared.hits > 0
        assert shared.misses == misses_after_first

    def test_tune_grid_points_never_alias(self):
        # Distinct p in one shared cache: every feasible row's plan must
        # carry its own point's stage count (an aliased IR would leak a
        # wrong-p schedule across points).
        grid = WorkloadGrid(
            seq_lens=(8192,), pipeline_sizes=(2, 4), budget_tokens=1 << 16
        )
        rows = tune_grid(grid, cache=CostCache(), ir_cache=ScheduleIRCache())
        baseline = tune_grid(grid, cache=CostCache(), ir_cache=None,
                             incremental=False)
        assert [r.label for r in rows] == [r.label for r in baseline]
