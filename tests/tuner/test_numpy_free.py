"""The tuner must work on a numpy-free install.

``throughput_upper_bounds`` gates its numpy import and falls back to the
scalar :class:`~repro.costmodel.timing.TimingModel`; ``zb-milp`` only
reaches for numpy/scipy past its closed-form placement fast path.  These
tests pin both behaviours two ways: in-process, by hiding numpy from
``import`` and asserting the scalar bounds are bit-identical to the
vectorised ones; and end-to-end, by running a full ``autotune`` plus
``lint_schedules`` in a subprocess whose meta-path blocks numpy *and*
scipy outright.
"""

import builtins
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.common import Workload
from repro.tuner import CostCache, autotune, enumerate_candidates
from repro.tuner.bounds import throughput_upper_bounds

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture
def no_numpy(monkeypatch):
    """Make ``import numpy`` fail for code under test.

    Modules that already hold a numpy reference keep it; only *new*
    imports are denied -- exactly the situation inside
    ``throughput_upper_bounds``, which imports lazily per call.
    """
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"{name} hidden by no_numpy fixture")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


@pytest.fixture(scope="module")
def wl():
    return Workload.paper("1.3B", "H20", 2, 8192)


class TestScalarBounds:
    def test_scalar_path_bit_identical_to_vectorised(self, wl, no_numpy):
        cands = enumerate_candidates(wl)
        assert cands
        scalar = throughput_upper_bounds(wl, cands)
        assert isinstance(scalar, list)
        # Recompute vectorised *outside* the block for comparison.
        vec = VEC_BOUNDS
        assert len(scalar) == len(vec)
        for got, want in zip(scalar, vec):
            # Same float ops in the same order: exact, not approximate.
            assert got == want

    def test_empty_candidates_returns_empty_list(self, wl, no_numpy):
        assert throughput_upper_bounds(wl, []) == []

    def test_unpriceable_workload_still_returns_none(self, no_numpy):
        class Duck:
            pass

        assert throughput_upper_bounds(Duck(), [object()]) is None

    def test_batch_layer_times_error_names_the_fallback(self, no_numpy):
        from repro.costmodel.timing import batch_layer_times

        wl = Workload.paper("1.3B", "H20", 2, 8192)
        gpu = wl.cluster.node.gpu
        with pytest.raises(ImportError, match="TimingModel"):
            batch_layer_times(gpu, wl.model, [1], [8192])


# Computed at import time (numpy available) so the no_numpy fixture
# cannot interfere with the reference values.
_WL_REF = Workload.paper("1.3B", "H20", 2, 8192)
VEC_BOUNDS = [
    float(x) for x in throughput_upper_bounds(_WL_REF, enumerate_candidates(_WL_REF))
]


_SUBPROCESS_SCRIPT = r"""
import importlib.abc
import json
import sys


class Blocker(importlib.abc.MetaPathFinder):
    BLOCKED = ("numpy", "scipy")

    def find_spec(self, fullname, path, target=None):
        root = fullname.split(".", 1)[0]
        if root in self.BLOCKED:
            raise ImportError(f"{fullname} is not installed (blocked)")


sys.meta_path.insert(0, Blocker())

try:
    import numpy  # noqa: F401
except ImportError:
    pass
else:
    raise SystemExit("blocker failed: numpy imported")

# repro.workloads, not repro.experiments.common: the experiments
# package eagerly imports memsim (a legitimate numpy user).  The
# numpy-free surface is workloads + tuner + lint.
from repro.workloads import Workload
from repro.lint import lint_schedules
from repro.tuner import CostCache, autotune, enumerate_candidates
from repro.tuner.bounds import throughput_upper_bounds

wl = Workload.paper("1.3B", "H20", 2, 8192)
bounds = throughput_upper_bounds(wl, enumerate_candidates(wl))
cache = CostCache()
plans = autotune(wl, cache=cache)
best = plans[0]
lint = lint_schedules(pp_sizes=(2,))
print(json.dumps({
    "bounds_type": type(bounds).__name__,
    "pruned": cache.stats.pruned,
    "best_label": best.label,
    "best_tokens_per_s": best.tokens_per_s,
    "lint_ok": lint.ok,
    "lint_errors": lint.total_errors,
}))
"""


class TestNumpyFreeEndToEnd:
    @pytest.fixture(scope="class")
    def probe(self):
        """One subprocess with numpy *and* scipy blocked at the meta-path:
        a sweep over every registered schedule (zb-milp included -- its
        closed-form placement path must not touch scipy) plus a lint run.
        """
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_bounds_degrade_to_list_with_pruning_intact(self, probe):
        assert probe["bounds_type"] == "list"
        assert probe["pruned"] > 0

    def test_best_plan_matches_numpy_run(self, probe, wl):
        plans = autotune(wl, cache=CostCache())
        assert probe["best_label"] == plans[0].label
        assert probe["best_tokens_per_s"] == pytest.approx(
            plans[0].tokens_per_s
        )

    def test_lint_runs_clean_without_numpy(self, probe):
        assert probe["lint_ok"] is True
        assert probe["lint_errors"] == 0
