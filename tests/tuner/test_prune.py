"""Admissible pruning never changes what the tuner finds.

ISSUE acceptance: on the paper's 7B / H20 / p=8 / 64k acceptance grid
the pruned sweep's best ``PlanResult`` is byte-identical to the
exhaustive sweep's, the feasible ranking restricted to the candidates
both sweeps simulated is identical, and pruning decisions replay
deterministically across warm re-sweeps and process pools.
"""

import pytest

from repro.experiments.common import Workload
from repro.tuner import CostCache, autotune


@pytest.fixture(scope="module")
def wl():
    """The paper's 7B / H20 / p=8 / 64k acceptance workload."""
    return Workload.paper("7B", "H20", 8, 65536)


@pytest.fixture(scope="module")
def exhaustive(wl):
    cache = CostCache()
    plans = autotune(wl, cache=cache, prune=False)
    return plans, cache


@pytest.fixture(scope="module")
def pruned(wl):
    cache = CostCache()
    plans = autotune(wl, cache=cache)
    return plans, cache


class TestPrunedVsExhaustive:
    def test_best_plan_is_byte_identical(self, exhaustive, pruned):
        full, _ = exhaustive
        cut, _ = pruned
        assert full and cut
        assert full[0].feasible
        assert cut[0] == full[0]

    def test_pruning_actually_prunes(self, wl, exhaustive, pruned):
        _, full_cache = exhaustive
        _, cut_cache = pruned
        assert cut_cache.stats.pruned > 0
        assert cut_cache.stats.misses < full_cache.stats.misses
        assert full_cache.stats.pruned == 0

    def test_feasible_ranking_identical_on_simulated_candidates(
        self, exhaustive, pruned
    ):
        """Restricted to the candidates the pruned sweep simulated, the
        two feasible rankings agree row for row (same order, same
        metrics): pruning only removes provably-losing rows, it never
        reorders or perturbs the survivors."""
        full, _ = exhaustive
        cut, _ = pruned
        simulated = {
            r.candidate for r in cut if not (r.reason or "").startswith("pruned")
        }
        full_rank = [r for r in full if r.feasible and r.candidate in simulated]
        cut_rank = [r for r in cut if r.feasible]
        assert cut_rank == full_rank

    def test_pruned_rows_reported_not_dropped(self, exhaustive, pruned):
        """Every exhaustive candidate appears in the pruned sweep too;
        the skipped ones carry an explicit ``pruned:`` reason."""
        full, _ = exhaustive
        cut, _ = pruned
        assert {r.candidate for r in cut} == {r.candidate for r in full}
        skipped = [r for r in cut if (r.reason or "").startswith("pruned")]
        assert skipped
        for row in skipped:
            assert not row.feasible
            assert row.iteration_time is None
            assert "upper bound" in row.reason

    def test_pruned_candidates_would_have_lost(self, exhaustive, pruned):
        """Ground truth: every pruned candidate's exhaustively-simulated
        throughput is below the winner's -- the bound never cut a
        contender."""
        full, _ = exhaustive
        cut, _ = pruned
        best = full[0].tokens_per_s
        by_cand = {r.candidate: r for r in full}
        for row in cut:
            if (row.reason or "").startswith("pruned"):
                assert by_cand[row.candidate].tokens_per_s < best


class TestDeterminism:
    def test_warm_resweep_replays_identical_decisions(self, wl):
        shared = CostCache()
        cold = autotune(wl, cache=shared)
        misses = shared.stats.misses
        warm = autotune(wl, cache=shared)
        assert warm == cold
        # Simulated candidates hit the cache; pruned ones never touch it.
        assert shared.stats.misses == misses
        assert shared.stats.hits == misses
        skipped = sum(1 for r in cold if (r.reason or "").startswith("pruned"))
        assert skipped > 0
        assert shared.stats.pruned == 2 * skipped

    def test_parallel_matches_serial(self, wl, pruned):
        serial, serial_cache = pruned
        cache = CostCache()
        parallel = autotune(wl, cache=cache, workers=4)
        assert parallel == serial
        # Speculatively-dispatched records that lost to the evolving
        # best are discarded, so the cache holds exactly the candidates
        # the serial replay simulated.
        assert len(cache) == len(serial_cache)
        assert cache.stats.misses == serial_cache.stats.misses

    def test_unpriceable_workload_disables_pruning(self, wl):
        """A workload the closed-form model cannot price sweeps
        exhaustively instead of guessing bounds."""

        class DuckWorkload:
            p = wl.p
            num_micro_batches = wl.num_micro_batches
            micro_batch = wl.micro_batch
            seq_len = wl.seq_len
            cluster = wl.cluster
            model = None  # unpriceable: no hidden size / layer count

            def costs(self, recompute):
                return wl.costs(recompute)

            def static_memory(self):
                return wl.static_memory()

            def cache_key(self):
                return ("duck-7B-H20-p8-64k",)

        cache = CostCache()
        plans = autotune(
            DuckWorkload(), schedules=["1f1b", "helix"], cache=cache
        )
        assert cache.stats.pruned == 0
        assert any(p.feasible for p in plans)
