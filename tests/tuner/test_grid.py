"""Workload-grid tuning: tune_grid ranking, reporting and cache reuse."""

import pytest

from repro.analysis.tuner_view import format_grid_table, grid_plan_rows
from repro.tuner import CostCache, enumerate_candidates, tune_grid
from repro.workloads import Workload, WorkloadGrid

def small_grid(**kw):
    """Small/fast grid: 1.3B on H20, two sequence lengths, one pipeline size."""
    base = dict(
        model="1.3B",
        gpu="H20",
        seq_lens=(16384, 32768),
        pipeline_sizes=(2,),
        budget_tokens=1 << 19,
    )
    base.update(kw)
    return WorkloadGrid(**base)


class TestFillBudget:
    def test_single_count_per_combo(self):
        wl = Workload.paper("1.3B", "H20", 2, 16384, num_micro_batches=9)
        cands = enumerate_candidates(
            wl, schedules=["1f1b"], option_grids={}, fill_budget=True
        )
        # One micro-batch count -- the largest multiple of the divisor
        # (p=2) under the budget of 9 -- instead of the 1f1b sweep 2,4,6,8.
        assert {c.num_micro_batches for c in cands} == {8}

    def test_sweep_mode_unchanged(self):
        wl = Workload.paper("1.3B", "H20", 2, 16384, num_micro_batches=9)
        cands = enumerate_candidates(wl, schedules=["1f1b"], option_grids={})
        assert {c.num_micro_batches for c in cands} == {2, 4, 6, 8}


class TestTuneGrid:
    def test_spans_points_and_ranks_by_throughput(self):
        plans = tune_grid(small_grid(), schedules=["1f1b", "helix"],
                          option_grids={}, cache=CostCache())
        feasible = [r for r in plans if r.feasible]
        assert feasible, "expected feasible plans"
        # Rows span multiple workload points.
        assert {(r.point.seq_len, r.point.p) for r in feasible} == {
            (16384, 2),
            (32768, 2),
        }
        # Ranked by tokens/s across the whole grid.
        rates = [r.tokens_per_s for r in feasible]
        assert rates == sorted(rates, reverse=True)
        # Feasible block strictly precedes the infeasible block.
        flags = [r.feasible for r in plans]
        assert flags == sorted(flags, reverse=True)

    def test_budget_fixes_micro_batches_per_point(self):
        plans = tune_grid(small_grid(), schedules=["1f1b"],
                          option_grids={}, cache=CostCache())
        for r in plans:
            if r.plan is None:
                continue
            expected = (1 << 19) // r.point.seq_len
            d = 2  # 1f1b divisor == p
            assert r.plan.candidate.num_micro_batches == (expected // d) * d

    def test_dead_point_reported_with_reason(self):
        grid = small_grid(seq_lens=(16384, 1 << 21))
        plans = tune_grid(grid, schedules=["1f1b"], option_grids={},
                          cache=CostCache())
        dead = [r for r in plans if r.plan is None]
        assert len(dead) == 1
        assert dead[0].point.seq_len == 1 << 21
        assert not dead[0].feasible
        assert "token budget" in dead[0].reason

    def test_divisor_preclusion_surfaces_as_infeasible_row(self):
        # Budget of 2 micro batches at 16k; helix needs fold*p == 4.
        grid = small_grid(seq_lens=(16384,), budget_tokens=2 << 14)
        plans = tune_grid(grid, schedules=["1f1b", "helix"],
                          option_grids={}, cache=CostCache())
        precluded = [
            r
            for r in plans
            if r.reason and "micro-batch divisor" in r.reason
        ]
        assert precluded, "helix divisor preclusion must be a row, not a gap"
        assert all(r.plan.candidate.schedule == "helix" for r in precluded)

    def test_recomputes_unknown_string_rejected(self):
        with pytest.raises(ValueError, match="only string mode is 'defaults'"):
            tune_grid(small_grid(), schedules=["1f1b"],
                      recomputes="none", cache=CostCache())

    def test_recomputes_defaults_runs_each_schedule_once(self):
        plans = tune_grid(small_grid(seq_lens=(16384,)),
                          schedules=["1f1b", "helix"], recomputes="defaults",
                          option_grids={}, cache=CostCache())
        cands = [r.plan.candidate for r in plans if r.plan is not None]
        assert len(cands) == 2  # one row per method, paper defaults only
        by_name = {c.schedule: c.recompute for c in cands}
        from repro.costmodel.memory import RecomputeStrategy
        from repro.schedules.registry import get_schedule

        assert by_name["1f1b"] == get_schedule("1f1b").default_recompute
        assert by_name["helix"] == RecomputeStrategy.WITHOUT_ATTENTION

    def test_include_infeasible_false_drops_reasons(self):
        grid = small_grid(seq_lens=(16384, 1 << 21))
        plans = tune_grid(grid, schedules=["1f1b"], option_grids={},
                          cache=CostCache(), include_infeasible=False)
        assert plans and all(r.feasible for r in plans)

    def test_shared_cache_warms_every_point(self):
        cache = CostCache()
        grid = small_grid()
        first = tune_grid(grid, schedules=["1f1b", "helix"],
                          option_grids={}, cache=cache)
        misses = cache.stats.misses
        assert misses > 0
        again = tune_grid(grid, schedules=["1f1b", "helix"],
                          option_grids={}, cache=cache)
        assert cache.stats.misses == misses, "second sweep must be all hits"
        assert [r.label for r in again] == [r.label for r in first]


class TestGridView:
    def test_table_includes_point_columns_and_reasons(self):
        grid = small_grid(seq_lens=(16384, 1 << 21))
        plans = tune_grid(grid, schedules=["1f1b", "helix"],
                          option_grids={}, cache=CostCache())
        rows = grid_plan_rows(plans)
        assert {"rank", "seq_len", "pp", "mb", "schedule", "status"} <= set(rows[0])
        text = format_grid_table(plans)
        assert "16k" in text
        assert "token budget" in text  # dead point reason rendered
        assert "ok" in text
