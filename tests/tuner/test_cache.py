"""CostCache persistence, merging and disk-vs-memory hit accounting."""

import json
import os
import threading

import pytest

from repro.tuner import CacheStats, CostCache, costmodel_fingerprint


def _key(i):
    return (("model", "7B"), 1.0, "helix", "none", i, ())


def _record(i):
    return {"error": None, "makespan": float(i), "peak_memory_bytes": 2.0 * i,
            "bubble_fraction": 0.1}


class TestPersistence:
    def test_round_trip_preserves_entries_and_keys(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        for i in range(5):
            cache.get_or_eval(_key(i), lambda i=i: _record(i))
        assert cache.save(path) == 5

        loaded = CostCache.from_file(path)
        assert len(loaded) == 5
        for i in range(5):
            # Keys must round trip as tuples, not JSON lists.
            assert _key(i) in loaded
            assert loaded.peek(_key(i)) == _record(i)

    def test_loaded_entries_count_as_disk_hits(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.get_or_eval(_key(0), lambda: _record(0))
        cache.save(path)

        loaded = CostCache.from_file(path)
        assert loaded.stats.lookups == 0
        loaded.get_or_eval(_key(0), lambda: pytest.fail("must not re-evaluate"))
        assert loaded.stats.disk_hits == 1
        assert loaded.stats.hits == 0
        assert loaded.stats.misses == 0
        # An entry evaluated after the load is a plain memory hit.
        loaded.get_or_eval(_key(1), lambda: _record(1))
        loaded.get_or_eval(_key(1), lambda: pytest.fail("must not re-evaluate"))
        assert loaded.stats.hits == 1
        assert loaded.stats.misses == 1

    def test_load_merges_and_keeps_memory_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        disk = CostCache()
        disk.adopt(_key(0), _record(0))
        disk.adopt(_key(1), _record(1))
        disk.save(path)

        cache = CostCache()
        cache.get_or_eval(_key(0), lambda: _record(0))
        assert cache.load(path) == 1  # key 0 already in memory
        cache.get_or_eval(_key(0), lambda: pytest.fail("cached"))
        cache.get_or_eval(_key(1), lambda: pytest.fail("cached"))
        assert cache.stats.hits == 1 and cache.stats.disk_hits == 1

    def test_non_store_file_rejected(self, tmp_path):
        path = tmp_path / "notacache.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a cost cache store"):
            CostCache().load(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"format": "repro-costcache", "version": 99, "entries": []})
        )
        with pytest.raises(ValueError, match="unsupported cost cache version"):
            CostCache().load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CostCache().load(tmp_path / "nope.json")

    def test_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_save_creates_missing_parent_directories(self, tmp_path):
        # Regression: this used to die inside mkstemp with a raw
        # FileNotFoundError for the temp file's directory.
        path = tmp_path / "new" / "deep" / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        assert cache.save(path) == 1
        assert CostCache.from_file(path).peek(_key(0)) == _record(0)

    def test_save_honors_umask_without_mutating_it(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        old = os.umask(0o027)
        try:
            cache.save(path)
            # The saved file carries 0o666 minus the umask, and the
            # process umask itself was never flipped by the save (the
            # old implementation's os.umask(0) probe raced under
            # threads and leaked on mid-save exceptions).
            assert os.stat(path).st_mode & 0o777 == 0o640
            assert os.umask(0o027) == 0o027
        finally:
            os.umask(old)

    def test_concurrent_threaded_saves_do_not_corrupt(self, tmp_path):
        path = tmp_path / "cache.json"
        caches = []
        for t in range(8):
            cache = CostCache()
            for i in range(10):
                cache.adopt(_key(1000 * t + i), _record(i))
            caches.append(cache)
        barrier = threading.Barrier(8)
        errors = []

        def save(cache):
            try:
                barrier.wait()
                for _ in range(5):
                    cache.save(path)
            except BaseException as err:  # pragma: no cover
                errors.append(err)

        threads = [threading.Thread(target=save, args=(c,)) for c in caches]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The last complete save won atomically: the file is one
        # writer's intact store, and no temp files were left behind.
        loaded = CostCache.from_file(path)
        assert len(loaded) == 10
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]


class TestCostModelFingerprint:
    def test_deterministic_within_process(self):
        fp = costmodel_fingerprint()
        assert fp == costmodel_fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # hex digest prefix

    def test_store_is_stamped(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        payload = json.loads(path.read_text())
        assert payload["costmodel"] == costmodel_fingerprint()

    def test_mismatched_fingerprint_warns_and_discards(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        payload = json.loads(path.read_text())
        payload["costmodel"] = "0123456789abcdef"
        path.write_text(json.dumps(payload))

        fresh = CostCache()
        with pytest.warns(UserWarning, match="fingerprint"):
            assert fresh.load(path) == 0
        assert len(fresh) == 0  # stale records are not served

    def test_unstamped_legacy_store_is_stale(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        payload = json.loads(path.read_text())
        del payload["costmodel"]
        path.write_text(json.dumps(payload))

        with pytest.warns(UserWarning, match="fingerprint"):
            assert CostCache().load(path) == 0

    def test_matching_fingerprint_round_trips(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        assert CostCache.from_file(path).peek(_key(0)) == _record(0)


class TestMerge:
    def test_merge_adopts_missing_entries_only(self):
        a, b = CostCache(), CostCache()
        a.adopt(_key(0), _record(0))
        b.adopt(_key(0), {"error": "worker disagrees"})
        b.adopt(_key(1), _record(1))
        assert a.merge(b) == 1
        # Existing entries win on conflict.
        assert a.peek(_key(0)) == _record(0)
        assert a.peek(_key(1)) == _record(1)

    def test_merge_records_no_stats(self):
        a, b = CostCache(), CostCache()
        b.get_or_eval(_key(0), lambda: _record(0))
        a.merge(b)
        assert a.stats.lookups == 0

    def test_merge_carries_disk_origin_bookkeeping(self, tmp_path):
        # Regression: merge used to drop other's _disk_keys, so entries
        # that came off a persisted store were re-counted as memory hits
        # after a merge, skewing the disk/memory stats split.
        path = tmp_path / "cache.json"
        disk = CostCache()
        disk.adopt(_key(0), _record(0))
        disk.save(path)

        worker = CostCache.from_file(path)  # disk-origin entry
        worker.get_or_eval(_key(1), lambda: _record(1))  # memory entry

        main = CostCache()
        assert main.merge(worker) == 2
        main.get_or_eval(_key(0), lambda: pytest.fail("cached"))
        main.get_or_eval(_key(1), lambda: pytest.fail("cached"))
        assert main.stats.disk_hits == 1
        assert main.stats.hits == 1

    def test_merge_conflict_keeps_own_disk_bookkeeping(self, tmp_path):
        path = tmp_path / "cache.json"
        disk = CostCache()
        disk.adopt(_key(0), _record(0))
        disk.save(path)

        mine = CostCache.from_file(path)  # key 0 is disk-origin here
        other = CostCache()
        other.get_or_eval(_key(0), lambda: _record(0))  # memory-origin there
        mine.merge(other)
        mine.get_or_eval(_key(0), lambda: pytest.fail("cached"))
        assert mine.stats.disk_hits == 1 and mine.stats.hits == 0


class TestStats:
    def test_totals_and_rate(self):
        s = CacheStats(hits=2, disk_hits=3, misses=5)
        assert s.total_hits == 5
        assert s.lookups == 10
        assert s.hit_rate == 0.5

    def test_str_mentions_disk_only_when_present(self):
        assert "disk" not in str(CacheStats(hits=1, misses=1))
        assert "2 from disk" in str(CacheStats(hits=1, disk_hits=2, misses=1))

    def test_clear_resets_disk_bookkeeping(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = CostCache()
        cache.adopt(_key(0), _record(0))
        cache.save(path)
        loaded = CostCache.from_file(path)
        loaded.clear()
        assert len(loaded) == 0
        loaded.get_or_eval(_key(0), lambda: _record(0))
        assert loaded.stats.misses == 1 and loaded.stats.disk_hits == 0
