"""Communication volumes (Section 4.2) and cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import a800_cluster, h20_cluster
from repro.comm import CommModel, boundary_volumes


class TestBoundaryVolumes:
    def test_paper_section_4_2_counts(self):
        b, s, h = 1, 4096, 1024
        bsh = b * s * h
        naive = boundary_volumes(b, s, h, ship_qkv_weights=False)
        assert naive.pre_to_attn == 4 * bsh  # Q, K, V + residual
        assert naive.attn_to_post == 2 * bsh  # attention out + residual
        assert naive.layerwise == bsh
        shipped = boundary_volumes(b, s, h, ship_qkv_weights=True)
        assert shipped.pre_to_attn == 2 * bsh + 3 * h * h

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1024, max_value=1 << 17),
        st.integers(min_value=64, max_value=8192),
    )
    def test_shipping_wins_for_long_sequences(self, b, s, h):
        """s >> h makes 2bsh + 3h^2 < 4bsh (the optimisation's point)."""
        naive = boundary_volumes(b, s, h, False).pre_to_attn
        ship = boundary_volumes(b, s, h, True).pre_to_attn
        if b * s * 2 > 3 * h:  # 2bsh > 3h^2  <=>  shipping smaller
            assert ship < naive

    def test_bytes_fp16_and_sp(self):
        v = boundary_volumes(1, 1024, 64, False)
        assert v.bytes("layerwise", sp=1) == 1024 * 64 * 2
        assert v.bytes("layerwise", sp=8) == 1024 * 64 * 2 / 8


class TestCommModel:
    def test_p2p_matches_cluster(self):
        cl = h20_cluster(2)
        cm = CommModel(cl)
        assert cm.p2p_time(1e8) == pytest.approx(cl.p2p_time(1e8))

    def test_h20_vs_a800_bandwidth(self):
        h, a = CommModel(h20_cluster(2)), CommModel(a800_cluster(2))
        assert h.p2p_time(1e9) < a.p2p_time(1e9)

    def test_all_reduce_decomposition(self):
        cm = CommModel(h20_cluster(2))
        assert cm.all_reduce_time(1e9) == pytest.approx(
            cm.all_gather_time(1e9) + cm.reduce_scatter_time(1e9)
        )

    def test_sp_overhead_positive(self):
        cm = CommModel(h20_cluster(2))
        assert cm.sequence_parallel_layer_overhead(1, 32768, 4096) > 0

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            CommModel(h20_cluster(2), compute_slowdown=0.5)
