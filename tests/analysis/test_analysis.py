"""Analysis helpers: formulas, report tables, timelines."""

import pytest

from repro.analysis import (
    activation_elems_table2,
    bubble_time_1f1b,
    bubble_time_helix,
    bubble_time_zb1p,
    format_table,
    normalize,
    render_timeline,
)
from repro.costmodel import unit_layer_times


class TestBubbleFormulas:
    def setup_method(self):
        self.lt = unit_layer_times()  # pre 1, attn 3, post 2; bwd == fwd

    def test_eq1_unit_world(self):
        # (p-1) * (fwd + bwd) * L/p = 3 * 12 * 2 = 72.
        assert bubble_time_1f1b(self.lt, 8, 4) == pytest.approx(72.0)

    def test_eq3_below_eq1(self):
        assert bubble_time_zb1p(self.lt, 8, 4) < bubble_time_1f1b(self.lt, 8, 4)

    def test_helix_excludes_attention(self):
        b = bubble_time_helix(self.lt, 4, fold=1, recompute_pre_post=False)
        assert b == pytest.approx(3 * (3.0 + 3.0))  # (p-1)(pre+post fwd+bwd)

    def test_helix_fold_doubles(self):
        one = bubble_time_helix(self.lt, 4, fold=1, recompute_pre_post=False)
        two = bubble_time_helix(self.lt, 4, fold=2, recompute_pre_post=False)
        assert two == pytest.approx(2 * one)

    def test_helix_recompute_adds_forward(self):
        off = bubble_time_helix(self.lt, 4, fold=2, recompute_pre_post=False)
        on = bubble_time_helix(self.lt, 4, fold=2, recompute_pre_post=True)
        assert on == pytest.approx(off + 2 * 3 * 3.0)  # fold*(p-1)*fwd(pre+post)

    def test_table2_memory_rows(self):
        bsh = 2 * 8 * 4
        assert activation_elems_table2("1f1b", 2, 8, 4, 16, 4, stage=0) == 16 * bsh * 16
        assert activation_elems_table2("zb1p", 2, 8, 4, 16, 4) == 16 * bsh * 16
        assert activation_elems_table2(
            "helix", 2, 8, 4, 16, 4, num_micro_batches=8
        ) == 4 * bsh * 8 * 4
        with pytest.raises(ValueError):
            activation_elems_table2("helix", 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            activation_elems_table2("nope", 1, 1, 1, 1, 1)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.25}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in out and "0.250" in out
        assert len(lines) == 4

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_normalize(self):
        n = normalize({"x": 2.0, "y": 4.0})
        assert n == {"x": 0.5, "y": 1.0}

    def test_normalize_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalize({"x": 0.0})


class TestTimeline:
    def _trace(self):
        from repro.cluster import abstract_cluster
        from repro.schedules.costs import UnitCosts
        from repro.schedules.one_f_one_b import build_1f1b
        from repro.sim import simulate

        sched = build_1f1b(
            2, 2, UnitCosts(num_layers=2), include_embed=False, include_head=False
        )
        return simulate(sched, abstract_cluster(2)).trace

    def test_renders_all_stages(self):
        out = render_timeline(self._trace(), 2, width=60)
        assert "P0 |" in out and "P1 |" in out

    def test_forward_digits_and_backward_letters(self):
        out = render_timeline(self._trace(), 2, width=60)
        assert "0" in out and "a" in out

    def test_idle_shown_as_dots(self):
        out = render_timeline(self._trace(), 2, width=60)
        assert "." in out  # 1F1B at p=2 has warmup idle

    def test_comm_rows(self):
        out = render_timeline(self._trace(), 2, width=60, show_comm=True)
        assert "~" in out

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert render_timeline(Trace(), 1) == "(empty trace)"
