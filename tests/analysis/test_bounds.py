"""Lower-bound formulas and the vectorised candidate pricer."""

import pytest

from repro.analysis.bubble import (
    bubble_lower_bound,
    bubble_time_1f1b,
    makespan_lower_bound,
)
from repro.costmodel.timing import TimingModel
from repro.tuner import autotune
from repro.tuner.bounds import throughput_upper_bounds
from repro.tuner.cache import CostCache
from repro.workloads import Workload


@pytest.fixture(scope="module")
def wl():
    return Workload.paper("1.3B", "H20", 4, 16384)


@pytest.fixture(scope="module")
def layer(wl):
    return TimingModel(
        wl.cluster.node.gpu,
        wl.model,
        wl.micro_batch,
        wl.seq_len,
        sp=wl.cluster.sequence_parallel_size,
    ).layer_times()


class TestBubbleLowerBound:
    def test_interleaving_shrinks_the_ramp(self, layer):
        L, p = 24, 4
        full = bubble_lower_bound("1f1b", layer, L, p)
        v2 = bubble_lower_bound("interleaved", layer, L, p)
        v4 = bubble_lower_bound(
            "interleaved", layer, L, p, {"num_chunks_per_stage": 4}
        )
        assert full == bubble_time_1f1b(layer, L, p)
        assert v2 == pytest.approx(full / 2)
        assert v4 == pytest.approx(full / 4)

    def test_unknown_schedules_degrade_to_zero(self, layer):
        assert bubble_lower_bound("zb-milp", layer, 24, 4) == 0.0
        assert bubble_lower_bound("adapipe", layer, 24, 4) == 0.0
        assert bubble_lower_bound("mystery", layer, 24, 4) == 0.0

    def test_never_negative(self, layer):
        for name in ("1f1b", "zb1p", "interleaved", "helix", "other"):
            assert bubble_lower_bound(name, layer, 24, 4) >= 0.0

    def test_makespan_bound_floors_at_dependency_chain(self, layer):
        # With one micro batch on a large pipeline, the F->BI chain of a
        # single micro batch dominates the per-stage work term.
        chain_bound = makespan_lower_bound("zb-milp", layer, 24, 24, 1)
        chain = 24 * (
            layer.fwd + layer.pre.bwd_b + layer.attn.bwd_b + layer.post.bwd_b
        )
        assert chain_bound == pytest.approx(chain)


class TestThroughputUpperBounds:
    def test_bounds_dominate_simulated_throughput(self, wl):
        plans = autotune(wl, cache=CostCache())
        feasible = [r for r in plans if r.feasible]
        assert feasible
        cands = [r.candidate for r in feasible]
        ubs = throughput_upper_bounds(wl, cands)
        assert ubs is not None and len(ubs) == len(cands)
        for row, ub in zip(feasible, ubs):
            assert row.tokens_per_s <= ub * (1.0 + 1e-9), (
                f"{row.label}: simulated {row.tokens_per_s} above bound {ub}"
            )

    def test_empty_candidates(self, wl):
        assert len(throughput_upper_bounds(wl, [])) == 0

    def test_unpriceable_workload_returns_none(self):
        class Duck:
            p = 4
            num_micro_batches = 8
            micro_batch = 1
            seq_len = 1024

        assert throughput_upper_bounds(Duck(), [object()]) is None
