"""Attention parallel partition tests (paper Section 4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.partition import (
    attention_stage,
    helix_partition,
    owner_segment,
    owner_stage,
)
from repro.model import SegmentKind, segments_cover_model


class TestOwnerMapping:
    def test_paper_placement_rules(self):
        """pre(0)->stage 0; post(l-1)+pre(l)->stage l%p; post(L-1)->stage 0."""
        L, p = 8, 4
        assert owner_stage(0, p, L) == 0
        for l in range(1, L):
            assert owner_stage(l, p, L) == l % p
        assert owner_stage(L, p, L) == 0  # wrap-around (L % p == 0)

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            owner_stage(9, 4, 8)

    def test_owner_segments(self):
        assert owner_segment(0, 8)[0].kind is SegmentKind.PRE
        seg = owner_segment(3, 8)[0]
        assert seg.kind is SegmentKind.POST_PRE and seg.layer == 3
        assert owner_segment(8, 8)[0].kind is SegmentKind.POST


class TestAttentionStage:
    def test_paper_formula(self):
        """Attention of (l, i) runs on stage (l + i + 1) mod p."""
        p = 4
        for l in range(8):
            for i in range(8):
                assert attention_stage(l, i, p, fold=1) == (l + i + 1) % p

    def test_parallel_across_stages(self):
        """Within one loop of p micro batches, the p attention computations
        of a layer land on p distinct stages."""
        p = 4
        for l in range(6):
            stages = {attention_stage(l, i, p, fold=1) for i in range(p)}
            assert stages == set(range(p))

    def test_two_fold_pairs_share_stage(self):
        p = 4
        for l in range(4):
            for k in range(p):
                a = attention_stage(l, 2 * k, p, fold=2)
                b = attention_stage(l, 2 * k + 1, p, fold=2)
                assert a == b

    def test_two_fold_covers_all_stages(self):
        p = 4
        for l in range(4):
            stages = {attention_stage(l, i, p, fold=2) for i in range(2 * p)}
            assert stages == set(range(p))

    def test_invalid_fold(self):
        with pytest.raises(ValueError):
            attention_stage(0, 0, 4, fold=0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.sampled_from([1, 2, 4]),
    )
    def test_stage_in_range(self, p, l, i, fold):
        assert 0 <= attention_stage(l, i, p, fold) < p


class TestHelixPartition:
    def test_covers_model(self):
        stages = helix_partition(8, 4)
        assert segments_cover_model(stages, 8)

    def test_stage0_extras(self):
        stages = helix_partition(8, 4)
        kinds = [s.kind for s in stages[0]]
        assert kinds[0] is SegmentKind.EMBED
        assert SegmentKind.PRE in kinds
        assert SegmentKind.POST in kinds
        assert kinds[-1] is SegmentKind.HEAD

    def test_balanced_post_pre_blocks(self):
        """Each stage owns L/p parameterised blocks (stage 0's pre+post
        halves combine to one block's worth)."""
        L, p = 16, 4
        stages = helix_partition(L, p)
        for s in range(1, p):
            blocks = [x for x in stages[s] if x.kind is SegmentKind.POST_PRE]
            assert len(blocks) == L // p

    def test_requires_divisibility(self):
        with pytest.raises(ValueError):
            helix_partition(10, 4)
