"""HelixPipe FILO schedule tests (naive and two-fold)."""

import pytest

from repro.analysis.bubble import bubble_time_helix
from repro.cluster import abstract_cluster
from repro.costmodel import RecomputeStrategy, unit_layer_times
from repro.core.filo import HelixFiloBuilder, build_helix_filo
from repro.model import SegmentKind
from repro.schedules.costs import UnitCosts
from repro.schedules.ir import ComputeInstr, OpType
from repro.sim import simulate


def _unit(L, recompute=RecomputeStrategy.NONE, comm=0.0):
    return UnitCosts(num_layers=L, recompute=recompute, comm_time=comm)


def _build(p, m, L, fold=1, recompute=RecomputeStrategy.NONE, comm=0.0, **kw):
    kw.setdefault("include_embed", False)
    kw.setdefault("include_head", False)
    return build_helix_filo(p, m, _unit(L, recompute, comm), fold=fold, **kw)


class TestStructure:
    def test_validates(self):
        _build(4, 8, 8, fold=2).validate()

    def test_loop_size_constraint(self):
        with pytest.raises(ValueError, match="multiple"):
            _build(4, 6, 8, fold=1)
        with pytest.raises(ValueError, match="multiple"):
            _build(4, 4, 8, fold=2)

    def test_attention_count_per_stage(self):
        """Each stage executes fold attention computations per layer per
        loop -- the 'parallel across stages' property."""
        p, m, L, fold = 4, 8, 8, 2
        sched = _build(p, m, L, fold=fold)
        for stage in range(p):
            attn_f = [
                i
                for i in sched.programs[stage]
                if isinstance(i, ComputeInstr)
                and i.op is OpType.F
                and i.segment.kind is SegmentKind.ATTN
            ]
            assert len(attn_f) == L * m // p

    def test_every_layer_phase_computed_once_per_mb(self):
        p, m, L = 4, 8, 8
        sched = _build(p, m, L, fold=2)
        seen: dict[tuple, int] = {}
        for i in sched.compute_instructions():
            if i.op is OpType.F:
                key = (i.segment.kind, i.segment.layer, i.micro_batch)
                seen[key] = seen.get(key, 0) + 1
        for mb in range(m):
            for l in range(L):
                attn = (SegmentKind.ATTN, l, mb)
                assert seen.get(attn) == 1
        assert all(v == 1 for v in seen.values())

    def test_forward_backward_symmetric_counts(self):
        sched = _build(4, 8, 8, fold=2)
        fs = sum(1 for i in sched.compute_instructions() if i.op is OpType.F)
        bs = sum(1 for i in sched.compute_instructions() if i.op is OpType.B)
        assert fs == bs

    def test_recompute_instructions_emitted(self):
        sched = _build(4, 8, 8, fold=2, recompute=RecomputeStrategy.WITHOUT_ATTENTION)
        rcs = [i for i in sched.compute_instructions() if i.op is OpType.RC]
        assert rcs, "recompute strategy must emit RC instructions"
        assert all(i.segment.kind is not SegmentKind.ATTN for i in rcs)

    def test_no_recompute_of_attention_ever(self):
        sched = _build(4, 8, 8, fold=2, recompute=RecomputeStrategy.WITHOUT_ATTENTION)
        for i in sched.compute_instructions():
            if i.segment.kind is SegmentKind.ATTN:
                assert i.op in (OpType.F, OpType.B)

    def test_embed_and_head_on_stage0(self):
        sched = build_helix_filo(4, 8, _unit(8), fold=2)
        for stage in range(1, 4):
            kinds = {
                i.segment.kind
                for i in sched.programs[stage]
                if isinstance(i, ComputeInstr)
            }
            assert SegmentKind.EMBED not in kinds
            assert SegmentKind.HEAD not in kinds
        kinds0 = {
            i.segment.kind
            for i in sched.programs[0]
            if isinstance(i, ComputeInstr)
        }
        assert SegmentKind.EMBED in kinds0 and SegmentKind.HEAD in kinds0


class TestTiming:
    def test_single_loop_naive_matches_table2(self):
        """Exact reproduction of the Figure 2b packing: bubble =
        (p-1) * (fwd + bwd of pre+post), attention out of the bubble."""
        p, L = 4, 8
        r = simulate(_build(p, 4, L, fold=1), abstract_cluster(p))
        expected = bubble_time_helix(
            unit_layer_times(), p, fold=1, recompute_pre_post=False
        )
        assert r.mean_bubble_time == pytest.approx(expected)

    def test_two_fold_bubble_independent_of_m(self):
        p, L = 4, 8
        bubbles = []
        for m in (8, 16, 32):
            r = simulate(_build(p, m, L, fold=2), abstract_cluster(p))
            bubbles.append(r.mean_bubble_time)
        assert max(bubbles) - min(bubbles) < 1e-6

    def test_two_fold_bubble_at_most_formula(self):
        p, L = 4, 8
        r = simulate(_build(p, 8, L, fold=2), abstract_cluster(p))
        formula = bubble_time_helix(
            unit_layer_times(), p, fold=2, recompute_pre_post=False
        )
        assert r.mean_bubble_time <= formula + 1e-9

    def test_helix_beats_1f1b(self):
        from repro.schedules.one_f_one_b import build_1f1b

        p, m, L = 4, 8, 8
        hx = simulate(_build(p, m, L, fold=2), abstract_cluster(p))
        fb = simulate(
            build_1f1b(p, m, _unit(L), include_embed=False, include_head=False),
            abstract_cluster(p),
        )
        assert hx.makespan < fb.makespan

    def test_two_fold_overlaps_comm_better_than_naive(self):
        """Section 4.3.2: with comm < attention, the two-fold schedule
        hides transfers that stall the naive schedule."""
        p, m, L, comm = 4, 8, 8, 2.0  # attn fwd = 3 > comm
        nv = simulate(_build(p, m, L, fold=1, comm=comm), abstract_cluster(p))
        tf = simulate(_build(p, m, L, fold=2, comm=comm), abstract_cluster(p))
        assert tf.makespan < nv.makespan

    def test_comm_overlap_breaks_when_comm_exceeds_attention(self):
        """Section 5.3: when a transfer outlasts the attention behind it
        the two-fold schedule degrades."""
        p, m, L = 4, 8, 8
        base = simulate(_build(p, m, L, fold=2, comm=0.0), abstract_cluster(p))
        ok = simulate(_build(p, m, L, fold=2, comm=1.0), abstract_cluster(p))
        slow = simulate(_build(p, m, L, fold=2, comm=6.0), abstract_cluster(p))
        assert ok.makespan < base.makespan * 1.10  # overlapped
        assert slow.makespan > base.makespan * 1.25  # exposed

    def test_recompute_adds_pre_post_forward_time(self):
        p, m, L = 4, 8, 8
        off = simulate(_build(p, m, L, fold=2), abstract_cluster(p))
        on = simulate(
            _build(p, m, L, fold=2, recompute=RecomputeStrategy.WITHOUT_ATTENTION),
            abstract_cluster(p),
        )
        assert on.makespan > off.makespan


class TestMemory:
    def test_balanced_across_stages(self):
        """Table 2: HelixPipe's stash is the same on every stage."""
        p, m, L = 4, 8, 8
        sched = _build(p, m, L, fold=2, recompute=RecomputeStrategy.WITHOUT_ATTENTION)
        r = simulate(sched, abstract_cluster(p))
        peaks = r.peak_memory_bytes
        assert max(peaks) <= min(peaks) * 1.25

    def test_table2_helix_stash_level(self):
        """Unit world: 4 abstract units per layer per micro batch, m*L/p
        per stage (2 owner units + 2 attention units under w/o-attn
        recompute in UnitCosts' stash accounting)."""
        p, m, L = 4, 8, 8

        class WoAttnUnit(UnitCosts):
            def segment_cost(self, seg):
                c = super().segment_cost(seg)
                return c

        sched = _build(p, m, L, fold=2, recompute=RecomputeStrategy.NONE)
        r = simulate(sched, abstract_cluster(p))
        # NONE strategy: 16 units per layer per mb, balanced: 16*m*L/p.
        expected = 16.0 * m * L / p
        for peak in r.peak_memory_bytes:
            assert peak == pytest.approx(expected, rel=0.1)

    def test_memory_grows_with_m(self):
        p, L = 4, 8
        r8 = simulate(_build(p, 8, L, fold=2), abstract_cluster(p))
        r16 = simulate(_build(p, 16, L, fold=2), abstract_cluster(p))
        assert max(r16.peak_memory_bytes) > max(r8.peak_memory_bytes)


class TestPlanner:
    def test_unknown_priority(self):
        with pytest.raises(ValueError):
            HelixFiloBuilder(
                4, 8, _unit(8), fold=2, priority="bogus",
                include_embed=False, include_head=False,
            ).build()

    @pytest.mark.parametrize("priority", ["filo", "hlf", "hybrid"])
    def test_all_priorities_produce_valid_schedules(self, priority):
        sched = HelixFiloBuilder(
            4, 8, _unit(8), fold=2, priority=priority,
            include_embed=False, include_head=False,
        ).build()
        r = simulate(sched, abstract_cluster(4))
        assert r.makespan > 0
