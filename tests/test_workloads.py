"""Workload presets, shape parsing and token-budget grid enumeration."""

import pytest

from repro.workloads import (
    GPU_CLUSTERS,
    Workload,
    WorkloadGrid,
    format_seq_len,
    parse_int_list,
    parse_seq_len,
    parse_seq_lens,
    parse_token_budget,
)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [("64k", 65536), ("64K", 65536), ("65536", 65536), ("32k", 32768)],
    )
    def test_seq_len(self, text, expected):
        assert parse_seq_len(text) == expected

    @pytest.mark.parametrize("text", ["", "banana", "64q", "-4", "0"])
    def test_seq_len_invalid(self, text):
        with pytest.raises(ValueError):
            parse_seq_len(text)

    @pytest.mark.parametrize(
        "text,expected",
        [("1M", 1 << 20), ("4M", 4 << 20), ("512k", 512 << 10), ("1G", 1 << 30)],
    )
    def test_token_budget(self, text, expected):
        assert parse_token_budget(text) == expected

    def test_seq_lens_list(self):
        assert parse_seq_lens("16k, 32k,65536") == (16384, 32768, 65536)
        with pytest.raises(ValueError):
            parse_seq_lens(" , ")

    def test_int_list(self):
        assert parse_int_list("4,8") == (4, 8)
        with pytest.raises(ValueError):
            parse_int_list("4,eight")

    def test_format_seq_len_round_trips(self):
        assert format_seq_len(65536) == "64k"
        assert format_seq_len(parse_seq_len("96k")) == "96k"
        assert format_seq_len(1000) == "1000"


class TestWorkload:
    def test_paper_defaults(self):
        wl = Workload.paper("7B", "H20", 4, 65536)
        assert wl.p == 4
        assert wl.num_micro_batches == 8  # 2 x p
        assert wl.tokens_per_iteration == 8 * 65536

    def test_reexported_from_experiments(self):
        # The experiments layer must resolve workloads through this
        # module, not a diverged copy.
        from repro.experiments.common import Workload as CommonWorkload

        assert CommonWorkload is Workload

    def test_gpu_presets_match_cli_choices(self):
        assert set(GPU_CLUSTERS) == {"H20", "A800"}


class TestWorkloadGrid:
    def test_default_budget_is_2p(self):
        grid = WorkloadGrid(seq_lens=(32768,), pipeline_sizes=(2, 4))
        points = grid.points()
        assert [p.num_micro_batches for p in points] == [4, 8]
        assert all(p.feasible for p in points)

    def test_token_budget_sets_micro_batches(self):
        grid = WorkloadGrid(
            seq_lens=(16384, 32768),
            pipeline_sizes=(4, 8),
            budget_tokens=1 << 20,
        )
        assert len(grid) == 4
        points = grid.points()
        assert len(points) == 4
        by_cell = {(p.seq_len, p.p): p.num_micro_batches for p in points}
        assert by_cell[(16384, 4)] == 64
        assert by_cell[(16384, 8)] == 64
        assert by_cell[(32768, 4)] == 32

    def test_budget_below_one_micro_batch_is_infeasible_row(self):
        grid = WorkloadGrid(
            seq_lens=(16384, 1 << 21),
            pipeline_sizes=(4,),
            budget_tokens=1 << 20,
        )
        points = grid.points()
        # The impossible point is enumerated, not omitted.
        assert len(points) == 2
        dead = [p for p in points if not p.feasible]
        assert len(dead) == 1
        assert dead[0].seq_len == 1 << 21
        assert "token budget" in dead[0].reason
        assert dead[0].num_micro_batches == 0
        with pytest.raises(ValueError, match="infeasible workload point"):
            dead[0].workload()

    def test_micro_batch_scales_budget(self):
        grid = WorkloadGrid(
            seq_lens=(16384,),
            pipeline_sizes=(4,),
            micro_batch=2,
            budget_tokens=1 << 20,
        )
        (point,) = grid.points()
        assert point.num_micro_batches == 32  # budget / (seq * b)

    def test_point_resolves_to_workload(self):
        grid = WorkloadGrid(
            model="1.3B",
            gpu="A800",
            seq_lens=(32768,),
            pipeline_sizes=(2,),
            budget_tokens=1 << 19,
        )
        (point,) = grid.points()
        wl = point.workload()
        assert wl.model.name == "1.3B"
        assert wl.p == 2
        assert wl.num_micro_batches == 16
        assert wl.tokens_per_iteration == 1 << 19

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(model="70B"),
            dict(gpu="H100"),
            dict(seq_lens=()),
            dict(pipeline_sizes=()),
            dict(seq_lens=(0,)),
            dict(pipeline_sizes=(-1,)),
            dict(micro_batch=0),
            dict(budget_tokens=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadGrid(**kwargs)

    def test_label_mentions_shape(self):
        grid = WorkloadGrid(
            seq_lens=(16384, 32768), pipeline_sizes=(4, 8), budget_tokens=1 << 20
        )
        assert "16k,32k" in grid.label
        assert "4,8" in grid.label
