"""``repro cache info|migrate``, ``tune --backend`` and ``repro serve``."""

import sqlite3

from repro.cli import main
from repro.tuner import CostCache, SqliteCostStore


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def _seed_json(path, n=3):
    cache = CostCache()
    for i in range(n):
        key = (("model", "7B"), 1.0, "helix", "none", i, ())
        cache.adopt(key, {"error": None, "makespan": float(i),
                          "peak_memory_bytes": 2.0 * i, "bubble_fraction": 0.1})
    cache.save(path)
    return cache


class TestCacheInfo:
    def test_json_store(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        _seed_json(path)
        code, out, _ = run(capsys, "cache", "info", str(path))
        assert code == 0
        assert "backend:     json" in out
        assert "entries:     3" in out
        assert "fingerprint: current" in out

    def test_sqlite_store(self, capsys, tmp_path):
        path = tmp_path / "plans.sqlite"
        cache = _seed_json(tmp_path / "seed.json")
        cache.save(path)
        code, out, _ = run(capsys, "cache", "info", str(path))
        assert code == 0
        assert "backend:     sqlite" in out and "entries:     3" in out

    def test_stale_store_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "plans.sqlite"
        _seed_json(tmp_path / "seed.json").save(path)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value='0123456789abcdef' WHERE key='costmodel'"
        )
        conn.commit()
        conn.close()
        # Info is read-only: it reports staleness without the
        # clear-and-restamp that opening the store would perform.
        code, out, _ = run(capsys, "cache", "info", str(path))
        assert code == 1
        assert "STALE" in out
        conn = sqlite3.connect(path)
        assert conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0] == 3
        conn.close()

    def test_missing_store_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = run(capsys, "cache", "info", str(tmp_path / "no.sqlite"))
        assert code == 1
        assert "error:" in err


class TestCacheMigrate:
    def test_json_to_sqlite_preserves_every_entry(self, capsys, tmp_path):
        src = tmp_path / "sweep.json"
        seeded = _seed_json(src, n=5)
        dst = tmp_path / "plans.sqlite"
        code, out, _ = run(capsys, "cache", "migrate", str(src), str(dst))
        assert code == 0
        assert "loaded 5 entries" in out and "wrote 5 entries" in out

        migrated = SqliteCostStore(dst, create=False)
        assert dict(migrated.items()) == dict(seeded.entries())

    def test_sqlite_to_json_round_trips(self, capsys, tmp_path):
        src = tmp_path / "plans.sqlite"
        seeded = _seed_json(tmp_path / "seed.json", n=4)
        seeded.save(src)
        dst = tmp_path / "back.json"
        code, out, _ = run(capsys, "cache", "migrate", str(src), str(dst))
        assert code == 0 and "wrote 4 entries" in out
        assert dict(CostCache.from_file(dst).entries()) == dict(seeded.entries())

    def test_explicit_backend_overrides_suffix(self, capsys, tmp_path):
        src = tmp_path / "sweep.json"
        _seed_json(src, n=2)
        dst = tmp_path / "plans.data"  # no sqlite suffix
        code, _, _ = run(
            capsys, "cache", "migrate", str(src), str(dst),
            "--dst-backend", "sqlite",
        )
        assert code == 0
        assert len(SqliteCostStore(dst, create=False)) == 2


class TestTuneBackend:
    def test_sqlite_cache_round_trip_serves_warm(self, capsys, tmp_path):
        path = str(tmp_path / "sweep.sqlite")
        code, out, _ = run(capsys, "tune", "--smoke", "--cache", path)
        assert code == 0
        assert f"cache: attached sqlite store {path} (0 entries)" in out

        code, out, _ = run(capsys, "tune", "--smoke", "--cache", path)
        assert code == 0
        # The warm sweep re-evaluates nothing: all disk hits, no misses.
        assert "/ 0 misses" in out
        assert "from disk" in out

    def test_backend_flag_overrides_suffix(self, capsys, tmp_path):
        path = str(tmp_path / "sweep.cache")
        code, out, _ = run(
            capsys, "tune", "--smoke", "--cache", path, "--backend", "sqlite"
        )
        assert code == 0
        assert "attached sqlite store" in out


class TestServeParser:
    def test_serve_is_registered_with_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve"])
        assert args.fn.__name__ == "_cmd_serve"
        assert (args.host, args.port) == ("127.0.0.1", 8642)
        assert args.cache is None and args.workers is None

    def test_serve_flags_parse(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--cache", "plans.sqlite", "--backend", "sqlite",
             "--workers", "4"]
        )
        assert args.port == 0 and args.backend == "sqlite"
