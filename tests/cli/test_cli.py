"""``python -m repro`` CLI: list/describe/build/simulate/tune smoke tests."""

import os
import subprocess
import sys

import pytest

import repro
from repro.cli import main
from repro.schedules.registry import available_schedules


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestList:
    def test_lists_every_registered_schedule(self, capsys):
        code, out, _ = run(capsys, "list")
        assert code == 0
        for name in available_schedules():
            assert name in out

    def test_module_entry_point(self):
        """`python -m repro list` must keep working (CI runs it)."""
        # The subprocess needs the src layout on its path even when the
        # suite runs un-installed via pyproject's pythonpath setting.
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "helix" in proc.stdout


class TestDescribe:
    def test_describe_shows_schema_and_grid(self, capsys):
        code, out, _ = run(capsys, "describe", "helix", "-p", "8")
        assert code == 0
        assert "fold = 2" in out
        assert "fold in [1, 2]" in out
        assert "micro-batch divisor (p=8): 16" in out

    def test_unknown_schedule_fails_cleanly(self, capsys):
        code, _, err = run(capsys, "describe", "pipedream")
        assert code == 1
        assert "unknown schedule" in err

    def test_debug_flag_propagates_exceptions(self, capsys):
        with pytest.raises(KeyError, match="unknown schedule"):
            main(["--debug", "describe", "pipedream"])


class TestBuildSimulate:
    def test_build_reports_shape(self, capsys):
        code, out, _ = run(
            capsys, "build", "helix", "--model", "7B", "--gpu", "H20",
            "-p", "4", "--seq-len", "32k",
        )
        assert code == 0
        assert "p=4, m=8" in out
        assert "verification passes clean" in out

    def test_build_with_option_override(self, capsys):
        code, out, _ = run(
            capsys, "build", "helix", "-p", "4", "--seq-len", "32k",
            "-o", "fold=1",
        )
        assert code == 0
        assert "fold=1" in out

    def test_build_rounds_budget_with_option_overrides(self, capsys):
        """-o fold=4 raises the divisor past the default budget; the
        default budget must follow the override instead of failing."""
        code, out, _ = run(
            capsys, "build", "helix", "-p", "4", "--seq-len", "32k",
            "-o", "fold=4",
        )
        assert code == 0
        assert "m=16" in out  # fold * p, the minimum feasible count

    def test_unknown_schedule_error_is_unquoted(self, capsys):
        code, _, err = run(capsys, "build", "bogus", "-p", "4", "--seq-len", "32k")
        assert code == 1
        assert 'error: "' not in err

    def test_build_infeasible_shape_fails_cleanly(self, capsys):
        code, _, err = run(
            capsys, "build", "helix", "-p", "4", "--seq-len", "32k",
            "-m", "6",  # not a multiple of fold * p
        )
        assert code == 1
        assert "error:" in err

    def test_simulate_prints_metrics(self, capsys):
        code, out, _ = run(
            capsys, "simulate", "zb1p", "-p", "4", "--seq-len", "32k",
        )
        assert code == 0
        assert "iteration time" in out
        assert "tokens/s" in out
        assert "peak memory" in out

    def test_seq_len_suffix_matches_plain(self, capsys):
        code_k, out_k, _ = run(capsys, "simulate", "1f1b", "-p", "4", "--seq-len", "32k")
        code_n, out_n, _ = run(capsys, "simulate", "1f1b", "-p", "4", "--seq-len", "32768")
        assert code_k == code_n == 0
        assert out_k == out_n


class TestTune:
    def test_smoke_sweep(self, capsys):
        code, out, _ = run(capsys, "tune", "--smoke")
        assert code == 0
        assert "best plan:" in out
        assert "rank" in out and "tokens_per_s" in out

    def test_persistent_cache_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "cache.json")
        code, out, _ = run(capsys, "tune", "--smoke", "--cache", path)
        assert code == 0
        assert "saved" in out
        code, out, _ = run(capsys, "tune", "--smoke", "--cache", path)
        assert code == 0
        assert "loaded" in out
        assert "0 misses" in out, "second sweep must be fully warm"

    def test_cache_in_missing_directory_is_created(self, capsys, tmp_path):
        # Save used to die with a raw mkstemp FileNotFoundError here;
        # now the parent directories are created on the way out.
        path = tmp_path / "new-dir" / "sweep.json"
        code, out, _ = run(capsys, "tune", "--smoke", "--cache", str(path))
        assert code == 0
        assert f"cache: saved 1 entries to {path}" in out
        assert path.exists()

    def test_workers_flag(self, capsys):
        code, out, _ = run(capsys, "tune", "--smoke", "--workers", "2")
        assert code == 0
        assert "best plan:" in out

    def test_top_limits_table(self, capsys):
        code, out, _ = run(capsys, "tune", "--smoke", "--top", "1")
        assert code == 0
        assert "more row(s)" in out

    def test_impossible_cap_exits_nonzero(self, capsys):
        code, out, _ = run(
            capsys, "tune", "--smoke", "--memory-cap-gib", "0.001",
        )
        assert code == 1
        assert "no feasible plan" in out

    def test_zero_cap_is_a_real_cap(self, capsys):
        """--memory-cap-gib 0 must not fall back to the full HBM size."""
        code, out, _ = run(capsys, "tune", "--smoke", "--memory-cap-gib", "0")
        assert code == 1
        assert "no feasible plan" in out

    def test_mistyped_option_value_fails_cleanly(self, capsys):
        """-o max_outstanding=none parses as the string 'none'; the
        resulting builder TypeError must exit cleanly, not traceback."""
        code, _, err = run(
            capsys, "build", "zb1p", "-p", "4", "--seq-len", "32k",
            "-o", "max_outstanding=none",
        )
        assert code == 1
        assert "error:" in err


class TestTuneGrid:
    GRID = (
        "tune", "--model", "1.3B", "--budget-tokens", "512k",
        "--seq-lens", "16k,32k", "-p", "2", "--schedules", "1f1b,helix",
        "--no-options",
    )

    def test_grid_sweep_ranks_across_points(self, capsys):
        code, out, _ = run(capsys, *self.GRID)
        assert code == 0
        assert "workload grid:" in out
        assert "best plan:" in out
        assert "workload points" in out
        # Both sequence lengths appear in the ranked table.
        assert "16k" in out and "32k" in out

    def test_multiple_pipeline_sizes_trigger_grid_mode(self, capsys):
        code, out, _ = run(
            capsys, "tune", "--model", "1.3B", "--seq-len", "16k",
            "-p", "2,4", "--schedules", "1f1b", "--no-options",
        )
        assert code == 0
        assert "workload grid:" in out

    def test_single_point_keeps_classic_mode(self, capsys):
        code, out, _ = run(capsys, "tune", "--smoke")
        assert code == 0
        assert "workload grid:" not in out
        assert "workload:" in out

    def test_micro_batch_budget_flag_rejected_in_grid_mode(self, capsys):
        code, _, err = run(capsys, *self.GRID, "-m", "8")
        assert code == 1
        assert "incompatible with a workload grid" in err

    def test_grid_cache_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "grid-cache.json")
        code, out, _ = run(capsys, *self.GRID, "--cache", path)
        assert code == 0
        assert "saved" in out
        code, out, _ = run(capsys, *self.GRID, "--cache", path)
        assert code == 0
        assert "0 misses" in out, "second grid sweep must be fully warm"


class TestExperiment:
    def test_list_names_every_registered_experiment(self, capsys):
        from repro.experiments.registry import available_experiments

        code, out, _ = run(capsys, "experiment", "list")
        assert code == 0
        for name in available_experiments():
            assert name in out

    def test_describe_shows_schema_and_smoke(self, capsys):
        code, out, _ = run(capsys, "experiment", "describe", "fig8_throughput")
        assert code == 0
        assert "pp_sizes = (2, 4, 8)" in out
        assert "smoke overrides" in out

    def test_run_prints_table(self, capsys):
        code, out, _ = run(capsys, "experiment", "run", "table2", "--smoke")
        assert code == 0
        assert "3 rows" in out
        assert "HelixPipe" in out

    def test_run_every_registered_experiment_smoke(self, capsys):
        """Acceptance: `experiment run <name>` works for every spec."""
        from repro.experiments.registry import available_experiments

        for name in available_experiments():
            code, out, _ = run(capsys, "experiment", "run", name, "--smoke")
            assert code == 0, name
            assert "rows" in out, name

    def test_run_json_is_parseable(self, capsys):
        import json

        code, out, _ = run(
            capsys, "experiment", "run", "table1", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "table1"
        assert payload["rows"]

    def test_run_writes_artifacts(self, capsys, tmp_path):
        out_dir = str(tmp_path / "artifacts")
        code, out, _ = run(
            capsys, "experiment", "run", "fig8_throughput", "--smoke",
            "--json", "--csv", "--out", out_dir,
        )
        assert code == 0
        import json
        import os

        files = sorted(os.listdir(out_dir))
        assert files == ["fig8_throughput.csv", "fig8_throughput.json"]
        payload = json.loads(open(os.path.join(out_dir, files[1])).read())
        assert payload["params"]["models"] == ["1.3B"]
        csv_text = open(os.path.join(out_dir, files[0])).read()
        assert csv_text.splitlines()[0].startswith("model,gpu,seq_len")

    def test_bare_out_writes_both_artifacts(self, capsys, tmp_path):
        out_dir = str(tmp_path / "artifacts")
        code, _, _ = run(
            capsys, "experiment", "run", "table2", "--smoke", "--out", out_dir,
        )
        assert code == 0
        import os

        assert sorted(os.listdir(out_dir)) == ["table2.csv", "table2.json"]

    def test_csv_flag_restricts_out_artifacts(self, capsys, tmp_path):
        out_dir = str(tmp_path / "artifacts")
        code, _, _ = run(
            capsys, "experiment", "run", "table2", "--smoke", "--csv",
            "--out", out_dir,
        )
        assert code == 0
        import os

        assert os.listdir(out_dir) == ["table2.csv"]

    def test_json_and_csv_to_stdout_rejected(self, capsys):
        code, _, err = run(
            capsys, "experiment", "run", "table2", "--smoke", "--json", "--csv",
        )
        assert code == 1
        assert "--out" in err

    def test_render_rejected_alongside_stdout_payload(self, capsys):
        code, _, err = run(
            capsys, "experiment", "run", "fig2_fig7_schedules",
            "--json", "--render",
        )
        assert code == 1
        assert "corrupt" in err

    def test_param_override(self, capsys):
        code, out, _ = run(
            capsys, "experiment", "run", "table2", "--smoke", "-P", "p=4",
        )
        assert code == 0

    def test_unknown_experiment_fails_cleanly(self, capsys):
        code, _, err = run(capsys, "experiment", "run", "fig99")
        assert code == 1
        assert "unknown experiment" in err

    def test_unknown_param_fails_cleanly(self, capsys):
        code, _, err = run(
            capsys, "experiment", "run", "table2", "-P", "banana=1",
        )
        assert code == 1
        assert "unknown parameter" in err

    def test_render_only_where_supported(self, capsys):
        code, out, _ = run(
            capsys, "experiment", "run", "fig2_fig7_schedules", "--render",
        )
        assert code == 0
        assert "P0 |" in out
        code, _, err = run(capsys, "experiment", "run", "table1", "--render")
        assert code == 1
        assert "no renderer" in err


class TestExperimentDiff:
    def _artifact(self, tmp_path, name, perturb=None):
        from repro.experiments.registry import run_experiment

        result = run_experiment("table2", smoke=True)
        if perturb:
            import json

            payload = json.loads(result.to_json())
            perturb(payload)
            path = tmp_path / name
            path.write_text(json.dumps(payload))
            return str(path)
        path = tmp_path / name
        path.write_text(result.to_json())
        return str(path)

    def test_identical_artifacts_diff_clean(self, capsys, tmp_path):
        a = self._artifact(tmp_path, "a.json")
        b = self._artifact(tmp_path, "b.json")
        code, out, _ = run(capsys, "experiment", "diff", a, b)
        assert code == 0
        assert "no drift" in out

    def test_drift_exits_nonzero_and_names_cells(self, capsys, tmp_path):
        a = self._artifact(tmp_path, "a.json")

        def bump(payload):
            payload["rows"][0]["makespan"] *= 1.5

        b = self._artifact(tmp_path, "b.json", perturb=bump)
        code, out, _ = run(capsys, "experiment", "diff", a, b)
        assert code == 1
        assert "DRIFT" in out and "makespan" in out

    def test_tolerance_flags_absorb_drift(self, capsys, tmp_path):
        a = self._artifact(tmp_path, "a.json")

        def bump(payload):
            payload["rows"][0]["makespan"] *= 1.5

        b = self._artifact(tmp_path, "b.json", perturb=bump)
        code, out, _ = run(
            capsys, "experiment", "diff", a, b, "--rtol", "0.6",
        )
        assert code == 0

    def test_json_output_is_machine_readable(self, capsys, tmp_path):
        import json

        a = self._artifact(tmp_path, "a.json")
        code, out, _ = run(capsys, "experiment", "diff", a, a, "--json")
        assert code == 0
        assert json.loads(out)["clean"] is True

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        a = self._artifact(tmp_path, "a.json")
        code, _, err = run(
            capsys, "experiment", "diff", a, str(tmp_path / "nope.json"),
        )
        assert code == 1
        assert "error" in err


class TestExperimentVerify:
    def test_update_then_verify_round_trip(self, capsys, tmp_path):
        golden = str(tmp_path / "golden")
        code, out, _ = run(
            capsys, "experiment", "verify", "--smoke", "--update",
            "--golden", golden, "--only", "table2,fig3_breakdown",
        )
        assert code == 0
        assert out.count("updated") == 2
        code, out, _ = run(
            capsys, "experiment", "verify", "--smoke",
            "--golden", golden, "--only", "table2,fig3_breakdown",
        )
        assert code == 0
        assert "2/2 experiment(s) clean" in out

    def test_drift_fails_with_report_file(self, capsys, tmp_path):
        import json

        golden = tmp_path / "golden"
        run(
            capsys, "experiment", "verify", "--smoke", "--update",
            "--golden", str(golden), "--only", "table2",
        )
        path = golden / "table2.json"
        payload = json.loads(path.read_text())
        payload["rows"][0]["makespan"] += 5.0
        path.write_text(json.dumps(payload))
        report = tmp_path / "report.txt"
        code, out, _ = run(
            capsys, "experiment", "verify", "--smoke",
            "--golden", str(golden), "--only", "table2",
            "--report", str(report),
        )
        assert code == 1
        assert "DRIFT" in out
        assert "makespan" in report.read_text()

    def test_missing_golden_dir_suggests_update(self, capsys, tmp_path):
        code, _, err = run(
            capsys, "experiment", "verify", "--smoke",
            "--golden", str(tmp_path / "nowhere"),
        )
        assert code == 1
        assert "--update" in err

    def test_missing_default_golden_dir_points_at_repo_root(
        self, capsys, tmp_path, monkeypatch
    ):
        """From outside the repo the default dir is absent; the error
        must steer to the committed baselines, not to --update (which
        would create a stray tree that bypasses them)."""
        monkeypatch.chdir(tmp_path)
        code, _, err = run(capsys, "experiment", "verify", "--smoke")
        assert code == 1
        assert "repository root" in err
        assert "--update" not in err

    def test_update_refused_outside_repo_root(
        self, capsys, tmp_path, monkeypatch
    ):
        """--update with the default golden dir from the wrong cwd must
        not create a stray tree that bypasses the committed baselines."""
        monkeypatch.chdir(tmp_path)
        code, _, err = run(
            capsys, "experiment", "verify", "--smoke", "--update",
        )
        assert code == 1
        assert "repository root" in err
        assert not (tmp_path / "tests").exists()

    def test_malformed_artifact_fails_cleanly(self, capsys, tmp_path):
        good = tmp_path / "good.json"
        from repro.experiments.registry import run_experiment

        good.write_text(run_experiment("table2", smoke=True).to_json())
        bad = tmp_path / "bad.json"
        bad.write_text('{"experiment": "table2", "rows": [1, 2]}')
        code, _, err = run(
            capsys, "experiment", "diff", str(good), str(bad),
        )
        assert code == 1
        assert "not an experiment artifact" in err

    def test_verify_against_committed_goldens(self, capsys):
        """The CLI default golden dir resolves relative to the repo
        root; run one cheap spec against the committed tree."""
        golden = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "tests", "golden",
        )
        code, out, _ = run(
            capsys, "experiment", "verify", "--smoke",
            "--golden", golden, "--only", "table2",
        )
        assert code == 0
        assert "1/1 experiment(s) clean" in out


class TestLintCode:
    _REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

    def test_default_sweep_is_clean_and_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(self._REPO)
        code, out, _ = run(capsys, "lint-code", "--strict")
        assert code == 0
        assert "0 error(s)" in out

    def test_list_passes(self, capsys):
        code, out, _ = run(capsys, "lint-code", "--list-passes")
        assert code == 0
        for name in (
            "guarded-by", "lock-order", "blocking-under-lock", "thread-hygiene",
        ):
            assert name in out

    def test_violation_fails_with_json_report(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import threading\n"
            "\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}  # guarded-by: _lock\n"
            "\n"
            "    def add(self, k, v):\n"
            "        self._items[k] = v\n"
        )
        code, out, _ = run(
            capsys, "lint-code", "--paths", str(bad), "--json"
        )
        assert code == 1
        import json

        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["issues"][0]["pass"] == "guarded-by"

    def test_out_writes_report_file(self, capsys, tmp_path):
        target = tmp_path / "code-lint.json"
        code, _, _ = run(
            capsys, "lint-code",
            "--paths", os.path.join(self._REPO, "src", "repro", "service"),
            "--json", "--out", str(target),
        )
        assert code == 0
        import json

        assert json.loads(target.read_text())["ok"] is True

    def test_pass_subset_selection(self, capsys):
        code, out, _ = run(
            capsys, "lint-code",
            "--paths", os.path.join(self._REPO, "src", "repro", "tuner"),
            "--passes", "lock-order",
        )
        assert code == 0
        assert "lock-order" in out or "0 error(s)" in out
