"""`lint_schedules` driver + the `repro lint` CLI verb.

The registry gate the CI job enforces: every registered schedule builds
and comes back ERROR-free from the full pass pipeline at p in {2, 4}.
"""

import json

import pytest

from repro.cli import main
from repro.lint import LintReport, default_micro_batches, lint_schedules
from repro.schedules.registry import available_schedules, get_schedule


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


@pytest.fixture(scope="module")
def full_sweep():
    return lint_schedules()


class TestLintSchedules:
    def test_registry_is_error_free(self, full_sweep):
        """The acceptance gate: zero errors over all schedules at p=2,4."""
        assert full_sweep.ok
        assert full_sweep.total_errors == 0

    def test_every_schedule_at_every_p_analyzed(self, full_sweep):
        expected = {
            (name, p) for p in (2, 4) for name in available_schedules()
        }
        got = {(c.schedule, c.p) for c in full_sweep.cells}
        assert got == expected
        assert all(c.skip_reason is None for c in full_sweep.cells)

    def test_known_hazards_surface_as_warnings(self, full_sweep):
        """helix-naive is the paper's Fig. 6 pathology: its unfused
        P2P stream must trip the comm hazard passes -- as warnings."""
        naive = [c for c in full_sweep.cells if c.schedule == "helix-naive"]
        assert all(c.errors == 0 and c.warnings > 0 for c in naive)

    def test_static_peaks_populated_under_cap(self, full_sweep):
        for c in full_sweep.cells:
            assert len(c.static_peaks) == c.p
            assert c.peak_gib is not None and c.peak_gib > 0

    def test_infeasible_m_becomes_skipped_cell(self):
        # helix requires m % (fold*p) == 0; m=2 at p=4 cannot build.
        report = lint_schedules(
            schedules=["helix"], pp_sizes=(4,), num_micro_batches=2
        )
        (cell,) = report.cells
        assert cell.skip_reason is not None
        assert "multiple of" in cell.skip_reason
        assert cell.errors == 0
        assert report.ok  # skipped cells never fail the gate

    def test_strict_mode_fails_on_warnings(self):
        report = lint_schedules(
            schedules=["helix-naive"], pp_sizes=(2,), strict=True
        )
        assert report.total_errors == 0
        assert report.total_warnings > 0
        assert not report.ok

    def test_pass_subset_respected(self):
        report = lint_schedules(schedules=["helix"], pp_sizes=(2,),
                                passes=["structure", "stash-balance"])
        (cell,) = report.cells
        assert cell.report.passes_run == ("structure", "stash-balance")

    def test_default_micro_batches_on_divisor_grid(self):
        for name in available_schedules():
            spec = get_schedule(name)
            for p in (2, 4):
                m = default_micro_batches(spec, p)
                d = spec.micro_batch_divisor(p)
                assert m % d == 0 and m >= 2 * p

    def test_json_dict_shape(self, full_sweep):
        payload = full_sweep.to_json_dict()
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert len(payload["cells"]) == len(full_sweep.cells)
        cell = payload["cells"][0]
        assert {"schedule", "p", "m", "recompute", "issues",
                "static_peak_bytes"} <= set(cell)
        json.dumps(payload)  # must be serialisable as-is

    def test_format_summary_line(self, full_sweep):
        text = full_sweep.format()
        assert text.splitlines()[-1].startswith("lint:")
        assert "-> PASS" in text

    def test_format_empty_report(self):
        empty = LintReport(cells=[], workload_label="nothing")
        assert "0 cell(s)" in empty.format()
        assert empty.ok


class TestLintCli:
    def test_default_sweep_exits_zero(self, capsys):
        code, out, _ = run(capsys, "lint")
        assert code == 0
        assert "-> PASS" in out

    def test_strict_promotes_warnings_to_failure(self, capsys):
        code, out, _ = run(
            capsys, "lint", "--schedules", "helix-naive", "-p", "2", "--strict"
        )
        assert code == 1
        assert "-> FAIL" in out

    def test_json_output_parses(self, capsys):
        code, out, _ = run(
            capsys, "lint", "--schedules", "helix", "-p", "2", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True

    def test_out_writes_report_file(self, capsys, tmp_path):
        target = tmp_path / "lint.json"
        code, _, _ = run(
            capsys, "lint", "--schedules", "helix", "-p", "2", "--json",
            "--out", str(target),
        )
        assert code == 0
        assert json.loads(target.read_text())["ok"] is True

    def test_list_passes(self, capsys):
        code, out, _ = run(capsys, "lint", "--list-passes")
        assert code == 0
        for name in ("structure", "comm-pairing", "peak-memory", "dead-code"):
            assert name in out

    def test_explicit_pass_subset(self, capsys):
        code, out, _ = run(
            capsys, "lint", "--schedules", "helix", "-p", "2",
            "--passes", "structure,deadlock",
        )
        assert code == 0

    def test_unknown_schedule_errors(self, capsys):
        code, _, err = run(capsys, "lint", "--schedules", "no-such-schedule")
        assert code != 0
        assert "unknown schedule" in err
