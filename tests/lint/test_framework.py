"""Pass framework: severities, registration, dependency skipping, tables."""

import pytest

from repro.model import Segment, SegmentKind
from repro.schedules.analysis import (
    AnalysisContext,
    AnalysisPass,
    PassIssue,
    Severity,
    available_passes,
    format_issue_table,
    get_pass,
    run_analysis,
)
from repro.schedules.analysis.framework import _dependency_order, register_pass
from repro.schedules.ir import ComputeInstr, OpType, Schedule
from repro.schedules.passes import ScheduleVerificationError

SEG = Segment(SegmentKind.LAYERS, 0, 1)


def _schedule(programs=None, p=1, m=1):
    return Schedule("t", p, m, programs if programs is not None else [[]] * p)


def _compute(stage=0, mb=0, stash=0.0, duration=1.0):
    return ComputeInstr(
        OpType.F, stage, mb, SEG, duration=duration, stash_delta=stash
    )


class TestSeverity:
    def test_total_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.WARNING >= Severity.INFO
        assert max(Severity.INFO, Severity.ERROR) is Severity.ERROR

    def test_default_is_error(self):
        assert PassIssue("p", "m").severity is Severity.ERROR


class TestPassIssueFormat:
    def test_legacy_error_shape_preserved(self):
        """Error issues keep the `[pass] (stage N) message` shape the
        pre-framework tests and callers match against."""
        assert str(PassIssue("structure", "boom", stage=2)) == (
            "[structure] (stage 2) boom"
        )
        assert str(PassIssue("structure", "boom")) == "[structure] boom"

    def test_structured_context_rendered(self):
        s = str(
            PassIssue(
                "comm-order",
                "raced",
                severity=Severity.WARNING,
                stage=1,
                step=7,
                tag="fwd:mb0:0->1",
            )
        )
        assert "warning" in s
        assert "stage 1" in s and "step 7" in s and "'fwd:mb0:0->1'" in s

    def test_issue_table_aligned_and_complete(self):
        issues = [
            PassIssue("alpha", "first", stage=0, step=12, tag="t0"),
            PassIssue("beta-longer", "second", severity=Severity.WARNING),
        ]
        table = format_issue_table(issues)
        lines = table.splitlines()
        assert lines[0].split() == [
            "pass", "severity", "stage", "step", "tag", "message",
        ]
        assert "first" in table and "second" in table
        # Columns align: every "message" starts at the same offset.
        offset = lines[0].index("message")
        assert lines[2][offset:].startswith("first")
        assert lines[3][offset:].startswith("second")


class TestRegistration:
    def test_builtin_passes_registered(self):
        names = set(available_passes())
        assert {
            "structure",
            "deadlock",
            "program-order",
            "stash-balance",
            "comm-pairing",
            "comm-order",
            "comm-hol",
            "peak-memory",
            "dead-code",
        } <= names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pass("structure")(lambda schedule: [])

    def test_unknown_pass_lookup(self):
        with pytest.raises(KeyError, match="unknown analysis pass"):
            get_pass("no-such-pass")

    def test_single_arg_pass_wrapped(self):
        """Legacy one-argument check functions get the uniform body."""
        ap = get_pass("structure")
        assert ap.run(_schedule()) == []  # context supplied implicitly

    def test_metadata_present(self):
        ap = get_pass("comm-hol")
        assert ap.category == "hazard"
        assert "comm-pairing" in ap.requires and "deadlock" in ap.requires


class TestDependencyOrder:
    def test_prerequisites_run_first(self):
        a = AnalysisPass("z-dep", lambda s, c: [], requires=("a-base",))
        b = AnalysisPass("a-base", lambda s, c: [])
        assert [p.name for p in _dependency_order([a, b])] == ["a-base", "z-dep"]

    def test_cycle_degrades_to_given_order(self):
        a = AnalysisPass("x", lambda s, c: [], requires=("y",))
        b = AnalysisPass("y", lambda s, c: [], requires=("x",))
        assert [p.name for p in _dependency_order([a, b])] == ["x", "y"]

    def test_foreign_requires_ignored(self):
        a = AnalysisPass("solo", lambda s, c: [], requires=("not-in-list",))
        assert [p.name for p in _dependency_order([a])] == ["solo"]


class TestRunAnalysis:
    def test_clean_schedule_clean_report(self):
        report = run_analysis(_schedule([[_compute()]]))
        assert report.ok
        assert report.issues == []
        assert report.max_severity is None
        assert not report.skipped

    def test_failing_prerequisite_skips_dependents(self):
        # stage field mismatch -> structure errors -> deadlock/dead-code skip
        bad = _schedule([[_compute(stage=3)]])
        report = run_analysis(bad)
        assert not report.ok
        assert "deadlock" in report.skipped
        assert "structure" in report.skipped["deadlock"]
        assert "deadlock" not in report.passes_run

    def test_explicit_pass_selection(self):
        report = run_analysis(_schedule([[_compute()]]), passes=["stash-balance"])
        assert report.passes_run == ("stash-balance",)

    def test_json_roundtrip_shape(self):
        bad = _schedule([[_compute(stage=3)]])
        payload = run_analysis(bad).to_json_dict()
        assert payload["ok"] is False
        assert payload["issues"][0]["pass"] == "structure"
        assert {"severity", "stage", "step", "tag", "message"} <= set(
            payload["issues"][0]
        )

    def test_context_threaded_to_passes(self):
        ctx = AnalysisContext(static_memory_bytes=0.0, memory_cap_bytes=1.0)
        big = _schedule([[_compute(stash=64.0), _compute(stash=-64.0)]])
        report = run_analysis(big, passes=["peak-memory"], context=ctx)
        assert not report.ok
        assert "exceeds memory cap" in report.issues[0].message


class TestVerificationErrorTable:
    def test_format_prints_aligned_table(self):
        err = ScheduleVerificationError(
            "bad",
            [
                PassIssue("structure", "unpaired tag 'x'", stage=0),
                PassIssue("structure", "self-send", stage=1, step=4),
            ],
        )
        text = err.format()
        assert text.startswith("schedule 'bad' failed verification:")
        lines = text.splitlines()
        assert "severity" in lines[1]
        assert len(lines) == 2 + 1 + 2  # header, rule, two rows
