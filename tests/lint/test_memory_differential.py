"""Static peak-memory must equal the simulator's measured peak exactly.

Memory only changes at stage-local compute instructions, which execute
serially in program order, so the forward dataflow in
:func:`repro.schedules.analysis.static_peak_memory` is timing-independent
and must reproduce the simulator's per-stage peak bit-for-bit -- for
every registered schedule, every admissible recompute strategy, and a
(p, m) grid.  Any divergence means one of the two accountings drifted.
"""

import pytest

from repro.schedules.analysis import static_peak_memory, stash_liveness
from repro.schedules.registry import (
    ScheduleBuildError,
    available_schedules,
    get_schedule,
    workload_option_defaults,
)
from repro.sim import simulate
from repro.workloads import Workload

PP_SIZES = (2, 4)
M_FACTORS = (1, 2)


def _workload(p: int) -> Workload:
    return Workload.paper("1.3B", "H20", p, 8192)


def _base_micro_batches(spec, p: int) -> int:
    d = spec.micro_batch_divisor(p)
    return ((2 * p + d - 1) // d) * d


def _cases():
    for p in PP_SIZES:
        for name in available_schedules():
            spec = get_schedule(name)
            for strategy in spec.recompute_choices:
                for factor in M_FACTORS:
                    yield name, p, strategy, factor


@pytest.mark.parametrize(
    "name,p,strategy,factor",
    list(_cases()),
    ids=lambda v: getattr(v, "value", v),
)
def test_static_peak_equals_simulated_peak(name, p, strategy, factor):
    wl = _workload(p)
    spec = get_schedule(name)
    m = factor * _base_micro_batches(spec, p)
    opts = workload_option_defaults(spec, wl)
    try:
        sched = spec.build((p, m), wl.costs(strategy), **opts)
    except ScheduleBuildError as err:
        pytest.skip(f"infeasible grid combo: {err}")
    static = wl.static_memory()

    peaks = static_peak_memory(sched, static)
    result = simulate(
        sched, wl.cluster, static_memory_bytes=static, record_trace=False
    )
    measured = [stage.peak_memory_bytes for stage in result.stages]
    # Bit-exact, not approximate: same floats in the same order.
    assert peaks == measured


def test_liveness_trajectory_maximum_is_the_peak():
    wl = _workload(2)
    spec = get_schedule("helix")
    m = _base_micro_batches(spec, 2)
    sched = spec.build(
        (2, m),
        wl.costs(spec.default_recompute),
        **workload_option_defaults(spec, wl),
    )
    static = wl.static_memory()
    peaks = static_peak_memory(sched, static)
    for stage in range(sched.num_stages):
        traj = stash_liveness(sched, stage, static)
        assert traj, "every stage computes something"
        assert max(high for _, _, high in traj) == peaks[stage]
        # Trajectory ends back at the static baseline (stash balance).
        assert traj[-1][1] == pytest.approx(static)


def test_per_stage_static_memory_list_supported():
    wl = _workload(2)
    spec = get_schedule("1f1b")
    m = _base_micro_batches(spec, 2)
    sched = spec.build(
        (2, m),
        wl.costs(spec.default_recompute),
        **workload_option_defaults(spec, wl),
    )
    statics = [1.0 * (1 << 30), 2.0 * (1 << 30)]
    peaks = static_peak_memory(sched, statics)
    result = simulate(
        sched, wl.cluster, static_memory_bytes=statics, record_trace=False
    )
    assert peaks == [s.peak_memory_bytes for s in result.stages]


def test_wrong_static_length_rejected():
    wl = _workload(2)
    spec = get_schedule("1f1b")
    sched = spec.build(
        (2, _base_micro_batches(spec, 2)),
        wl.costs(spec.default_recompute),
        **workload_option_defaults(spec, wl),
    )
    with pytest.raises(ValueError, match="entries for"):
        static_peak_memory(sched, [0.0, 0.0, 0.0])
