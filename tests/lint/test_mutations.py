"""Mutation tests: each analyzer pass catches its seeded defect.

Every test corrupts a known-good built schedule (or constructs a
minimal pathological one) and asserts that exactly the pass designed
for that defect reports it -- the acceptance contract for the analyzer:
a dropped receive, a swapped send pair, a memory blow-up and a dead
instruction must each be caught by name.
"""

import copy

import pytest

from repro.model import Segment, SegmentKind
from repro.schedules.analysis import (
    AnalysisContext,
    Severity,
    run_analysis,
)
from repro.schedules.analysis.commrace import (
    build_channel_graph,
    check_comm_order,
    check_comm_pairing,
    check_hol_blocking,
)
from repro.schedules.analysis.deadcode import check_dead_instructions
from repro.schedules.costs import UnitCosts
from repro.schedules.ir import (
    ComputeInstr,
    OpType,
    RecvInstr,
    Schedule,
    SendInstr,
)
from repro.schedules.registry import build_schedule

SEG = Segment(SegmentKind.LAYERS, 0, 1)
CTX = AnalysisContext()


def _built():
    return build_schedule("helix", (4, 8), UnitCosts(num_layers=4))


def _drop_first_recv(sched):
    for prog in sched.programs:
        for i, instr in enumerate(prog):
            if isinstance(instr, RecvInstr):
                del prog[i]
                return instr
    raise AssertionError("no recv found")


def _swap_same_channel_sends(sched):
    """Swap the first two SENDs that share a (src, dst) channel."""
    for prog in sched.programs:
        by_channel = {}
        for i, instr in enumerate(prog):
            if isinstance(instr, SendInstr):
                by_channel.setdefault(instr.peer, []).append(i)
        for positions in by_channel.values():
            if len(positions) >= 2:
                a, b = positions[0], positions[1]
                prog[a], prog[b] = prog[b], prog[a]
                return prog[a].tag, prog[b].tag
    raise AssertionError("no channel carries two sends")


class TestDroppedRecv:
    def test_comm_pairing_reports_orphaned_send(self):
        sched = copy.deepcopy(_built())
        dropped = _drop_first_recv(sched)
        issues = check_comm_pairing(sched, CTX)
        orphans = [i for i in issues if "orphaned SEND" in i.message]
        assert orphans, "dropped recv must orphan its send"
        assert any(i.tag == dropped.tag for i in orphans)
        assert all(i.severity is Severity.ERROR for i in orphans)

    def test_full_pipeline_fails_and_gates_dependents(self):
        sched = copy.deepcopy(_built())
        _drop_first_recv(sched)
        report = run_analysis(sched)
        assert not report.ok
        assert {"structure", "comm-pairing"} <= {
            i.pass_name for i in report.errors
        }
        # Dataflow over unpaired tags is noise; must be skipped, not run.
        assert "comm-order" in report.skipped


class TestSwappedSends:
    def test_comm_order_flags_the_race(self):
        sched = copy.deepcopy(_built())
        tags = _swap_same_channel_sends(sched)
        issues = check_comm_order(sched, CTX)
        assert issues, "swapped same-channel sends must race"
        assert all(i.severity is Severity.WARNING for i in issues)
        assert any(i.tag in tags for i in issues)
        assert any("out of send order" in i.message for i in issues)

    def test_swap_keeps_schedule_executable(self):
        """The defect is a portability hazard, not an IR error: the
        full pipeline still reports zero errors."""
        sched = copy.deepcopy(_built())
        _swap_same_channel_sends(sched)
        report = run_analysis(sched)
        assert report.ok
        assert any(i.pass_name == "comm-order" for i in report.warnings)


class TestPairingDefects:
    def test_size_mismatch_flagged(self):
        s = Schedule(
            "sz", 2, 1,
            [
                [SendInstr(0, 1, "t", 64.0)],
                [RecvInstr(1, 0, "t", 32.0)],
            ],
        )
        issues = check_comm_pairing(s, CTX)
        assert any("payload size mismatch" in i.message for i in issues)

    def test_endpoint_mismatch_flagged(self):
        s = Schedule(
            "ep", 3, 1,
            [
                [SendInstr(0, 1, "t", 8.0)],
                [],
                [RecvInstr(2, 0, "t", 8.0)],
            ],
        )
        issues = check_comm_pairing(s, CTX)
        assert any("endpoint mismatch" in i.message for i in issues)

    def test_channel_graph_indexes_program_order(self):
        sched = _built()
        g = build_channel_graph(sched)
        for ops in g.sends.values():
            stages = {op.stage for op in ops}
            assert len(stages) == 1  # one sender per directed channel
            assert [op.step for op in ops] == sorted(op.step for op in ops)


class TestHeadOfLineBlocking:
    def test_multi_channel_hol_cycle_detected(self):
        """Deadlock-free under tag matching, stuck under in-order
        channels: stage 0 posts its recvs against channel (1->0)'s send
        order reversed, and completing t1's recv is what unblocks the
        peer's second send in the tag-matched world -- but under
        in-order matching t2 cannot be delivered first."""
        s = Schedule(
            "hol", 2, 1,
            [
                [
                    RecvInstr(0, 1, "u2", 1.0),
                    SendInstr(0, 1, "d1", 1.0),
                    RecvInstr(0, 1, "u1", 1.0),
                ],
                [
                    SendInstr(1, 0, "u1", 1.0),
                    SendInstr(1, 0, "u2", 1.0),
                    RecvInstr(1, 0, "d1", 1.0),
                ],
            ],
        )
        # Sanity: executable under the IR's tag-matched semantics.
        report = run_analysis(s, passes=["structure", "deadlock"])
        assert report.ok
        issues = check_hol_blocking(s, CTX)
        assert issues
        assert all(i.severity is Severity.WARNING for i in issues)
        assert any("head-of-line blocking" in i.message for i in issues)

    def test_clean_schedule_no_hol(self):
        assert check_hol_blocking(_built(), CTX) == []


class TestPeakMemoryDefect:
    def test_blowup_caught_against_cap(self):
        sched = copy.deepcopy(_built())
        # Seed a leak-free but huge transient allocation on stage 1.
        sched.programs[1].append(
            ComputeInstr(
                OpType.F, 1, 0, SEG, duration=1.0,
                workspace=128.0 * (1 << 30),
            )
        )
        ctx = AnalysisContext(
            static_memory_bytes=0.0, memory_cap_bytes=96.0 * (1 << 30)
        )
        report = run_analysis(sched, passes=["stash-balance", "peak-memory"],
                              context=ctx)
        assert not report.ok
        (issue,) = report.errors
        assert issue.pass_name == "peak-memory"
        assert issue.stage == 1
        assert "exceeds memory cap" in issue.message


class TestDeadInstructions:
    def test_noop_compute_flagged(self):
        s = Schedule(
            "noop", 1, 1,
            [[
                ComputeInstr(OpType.F, 0, 0, SEG, duration=1.0),
                ComputeInstr(OpType.BW, 0, 0, SEG, duration=0.0),
            ]],
        )
        issues = check_dead_instructions(s, CTX)
        assert any("no-op compute" in i.message for i in issues)

    def test_redundant_push_pop_flagged(self):
        s = Schedule(
            "pushpop", 1, 1,
            [[
                ComputeInstr(OpType.F, 0, 0, SEG, duration=1.0,
                             stash_delta=64.0),
                ComputeInstr(OpType.B, 0, 0, SEG, duration=0.0,
                             stash_delta=-64.0),
            ]],
        )
        issues = check_dead_instructions(s, CTX)
        assert any("push/pop pair" in i.message for i in issues)

    def test_real_backward_consuming_stash_not_flagged(self):
        """F immediately followed by a *working* B (the helix fold
        boundary) is legitimate, not dead accounting."""
        s = Schedule(
            "fold", 1, 1,
            [[
                ComputeInstr(OpType.F, 0, 0, SEG, duration=1.0,
                             stash_delta=64.0),
                ComputeInstr(OpType.B, 0, 0, SEG, duration=2.0,
                             stash_delta=-64.0),
            ]],
        )
        issues = check_dead_instructions(s, CTX)
        assert not any("push/pop pair" in i.message for i in issues)

    def test_unreachable_micro_batch_flagged(self):
        s = Schedule(
            "warmup", 1, 2,
            [[
                ComputeInstr(OpType.F, 0, 0, SEG, duration=1.0),
                ComputeInstr(OpType.F, 0, 5, SEG, duration=1.0),
            ]],
        )
        issues = check_dead_instructions(s, CTX)
        assert any("unreachable" in i.message and "micro batch 5" in i.message
                   for i in issues)

    def test_flood_capped_with_summary(self):
        prog = [
            ComputeInstr(OpType.F, 0, 0, SEG, duration=0.0)
            for _ in range(20)
        ]
        s = Schedule("flood", 1, 1, [prog])
        issues = check_dead_instructions(s, CTX)
        noop = [i for i in issues if "no-op compute" in i.message]
        assert len(noop) == 8
        assert any("more finding(s)" in i.message for i in issues)


@pytest.mark.parametrize("mutation,pass_name", [
    (_drop_first_recv, "comm-pairing"),
    (_swap_same_channel_sends, "comm-order"),
])
def test_each_mutation_caught_by_its_pass(mutation, pass_name):
    """The acceptance matrix in one place: seeded defect -> catching pass."""
    sched = copy.deepcopy(_built())
    mutation(sched)
    report = run_analysis(sched)
    assert any(i.pass_name == pass_name for i in report.issues)
