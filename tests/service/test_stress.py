"""Concurrency stress and shutdown: the ISSUE's lost-update regression net.

The storm drives one :class:`PlannerService` over a sqlite-backed cache
with >=8 threads mixing ``/v1/plan`` and ``/v1/sweep`` traffic exactly
the way the HTTP layer does (``record_request`` on entry, ``record_error``
on failure) and then checks two conservation laws:

- telemetry counters balance: every request is accounted cold, warm,
  coalesced or error -- a lost update under ``ServiceTelemetry._lock``
  (or an unlocked ``CostCache`` publish) breaks the equality;
- no cache write is lost: after the storm every plan answer is warm and
  every in-memory entry reached the sqlite store's write-through.

The shutdown class covers the graceful-drain contract ``repro serve``
relies on: close() joins sweep threads, rejects late sweeps, closes the
store's connections, and is idempotent.
"""

import threading

import pytest

from repro.service import PlannerService
from repro.tuner import CostCache

_PLAN_BODIES = [
    {
        "model": "7B",
        "gpu": "H20",
        "p": 2,
        "seq_len": seq,
        "schedules": ["1f1b"],
        "options": False,
    }
    for seq in ("4k", "8k")
]

_SWEEP_BODY = {
    "model": "7B",
    "seq_lens": ["4k", "8k"],
    "pipeline_sizes": [2],
    "schedules": ["1f1b"],
    "options": False,
}


@pytest.fixture
def service(tmp_path):
    path = tmp_path / "stress.sqlite"
    cache = CostCache.open(path)
    svc = PlannerService(cache, save_path=str(path), save_backend="sqlite")
    yield svc
    svc.close()


class TestStressStorm:
    def test_counter_conservation_and_no_lost_writes(self, service):
        n_plan_threads, plans_each = 8, 3
        errors: list[BaseException] = []
        err_lock = threading.Lock()
        gate = threading.Barrier(n_plan_threads + 2)

        def plan_worker(idx):
            gate.wait()
            for i in range(plans_each):
                body = _PLAN_BODIES[(idx + i) % len(_PLAN_BODIES)]
                service.telemetry.record_request("/v1/plan")
                try:
                    service.plan(body)
                except BaseException as err:
                    service.telemetry.record_error()
                    with err_lock:
                        errors.append(err)

        def sweep_worker():
            gate.wait()
            service.telemetry.record_request("/v1/sweep")
            try:
                service.start_sweep(_SWEEP_BODY)
            except BaseException as err:
                service.telemetry.record_error()
                with err_lock:
                    errors.append(err)

        def bad_worker():
            gate.wait()
            service.telemetry.record_request("/v1/plan")
            try:
                service.plan({"model": "no-such-model"})
            except ValueError:
                service.telemetry.record_error()

        threads = [
            threading.Thread(target=plan_worker, args=(i,))
            for i in range(n_plan_threads)
        ]
        threads.append(threading.Thread(target=sweep_worker))
        threads.append(threading.Thread(target=bad_worker))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        # Conservation: requests == cold + warm + coalesced + errors.
        # (The sweep request is counted on /v1/sweep but produces no plan
        # outcome, so balance plan-endpoint traffic specifically.)
        tele = service.telemetry.as_dict()
        plan_requests = tele["by_endpoint"]["/v1/plan"]
        outcomes = (
            tele["plans_cold"]
            + tele["plans_warm"]
            + tele["plans_coalesced"]
            + tele["errors"]
        )
        assert plan_requests == n_plan_threads * plans_each + 1
        assert outcomes == plan_requests
        assert tele["errors"] == 1  # exactly the seeded bad request
        # Dedup really coalesced or warmed duplicates: only one cold
        # evaluation can exist per distinct body.
        assert tele["plans_cold"] <= len(_PLAN_BODIES)

        # No lost cache writes, part 1: everything answers warm now.
        for body in _PLAN_BODIES:
            assert service.plan(body)["outcome"] == "warm"
        # Part 2: every in-memory entry reached the sqlite store.
        assert service.cache.store is not None
        for key, _record in service.cache.entries():
            assert key in service.cache.store

    def test_identical_burst_coalesces_to_one_cold_eval(self, service):
        n = 8
        gate = threading.Barrier(n)
        outcomes: list[str] = []
        lock = threading.Lock()

        def worker():
            gate.wait()
            out = service.plan(_PLAN_BODIES[0])["outcome"]
            with lock:
                outcomes.append(out)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == n
        assert outcomes.count("cold") == 1
        assert set(outcomes) <= {"cold", "warm", "coalesced"}


class TestGracefulShutdown:
    def test_close_drains_sweeps_and_reports_save_count(self, tmp_path):
        path = tmp_path / "drain.sqlite"
        service = PlannerService(
            CostCache.open(path), save_path=str(path), save_backend="sqlite"
        )
        service.start_sweep(_SWEEP_BODY)
        saved = service.close()
        # The sweep thread was joined before the final save, so its
        # results are included and its record reached a terminal state.
        assert saved is not None and saved > 0
        (record,) = service.sweeps()
        assert record["state"] in ("done", "failed")
        assert record["state"] == "done"

    def test_sweep_after_close_is_rejected(self, tmp_path):
        service = PlannerService(CostCache.open(tmp_path / "c.sqlite"))
        service.close()
        with pytest.raises(ValueError, match="shutting down"):
            service.start_sweep(_SWEEP_BODY)

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "idem.sqlite"
        service = PlannerService(
            CostCache.open(path), save_path=str(path), save_backend="sqlite"
        )
        assert service.close() == service.close()

    def test_close_without_save_path_returns_none(self):
        service = PlannerService(CostCache())
        assert service.close() is None

    def test_close_closes_store_connections(self, tmp_path):
        path = tmp_path / "fds.sqlite"
        service = PlannerService(
            CostCache.open(path), save_path=str(path), save_backend="sqlite"
        )
        service.plan(_PLAN_BODIES[0])
        store = service.cache.store
        assert store._all_conns
        service.close()
        assert store._all_conns == []
