"""HTTP layer: routing, JSON error mapping, live-server round trips."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import PlannerService, create_server

_BODY = {
    "model": "7B",
    "gpu": "H20",
    "p": 2,
    "seq_len": "8k",
    "schedules": ["1f1b"],
    "options": False,
}


@pytest.fixture()
def server():
    service = PlannerService()
    srv = create_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def _error(server, method, path, payload=None):
    try:
        if method == "GET":
            _get(server, path)
        else:
            _post(server, path, payload or {})
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())
    raise AssertionError(f"{method} {path} unexpectedly succeeded")


class TestRouting:
    def test_healthz(self, server):
        status, body = _get(server, "/v1/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["cache_entries"] == 0

    def test_unknown_path_is_404_json(self, server):
        code, body = _error(server, "GET", "/v1/nope")
        assert code == 404 and "unknown endpoint" in body["error"]

    def test_wrong_method_is_405_json(self, server):
        code, body = _error(server, "GET", "/v1/plan")
        assert code == 405 and "not allowed" in body["error"]
        code, body = _error(server, "POST", "/v1/stats")
        assert code == 405

    def test_trailing_slash_is_tolerated(self, server):
        status, _ = _get(server, "/v1/healthz/")
        assert status == 200


class TestPlanEndpoint:
    def test_plan_round_trip_and_stats(self, server):
        status, body = _post(server, "/v1/plan", _BODY)
        assert status == 200
        assert body["outcome"] == "cold" and body["best"]["feasible"]
        assert body["best"]["schedule"] == "1f1b"

        status, again = _post(server, "/v1/plan", _BODY)
        assert again["outcome"] == "warm"
        assert again["plans"] == body["plans"]

        _, stats = _get(server, "/v1/stats")
        telemetry = stats["telemetry"]
        assert telemetry["plans"] == 2
        assert telemetry["plans_cold"] == 1 and telemetry["plans_warm"] == 1
        assert telemetry["by_endpoint"]["/v1/plan"] == 2
        assert stats["cache"]["disk_hits"] == 0

    def test_validation_error_is_400_json(self, server):
        code, body = _error(server, "POST", "/v1/plan", {"model": "70T"})
        assert code == 400 and "unknown model preset" in body["error"]
        code, body = _error(server, "POST", "/v1/plan", {"bogus": 1})
        assert code == 400 and "unknown plan request field" in body["error"]
        _, stats = _get(server, "/v1/stats")
        assert stats["telemetry"]["errors"] == 2

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/v1/plan"),
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_empty_body_uses_defaults_but_is_validated(self, server):
        # An empty body is the all-defaults plan request (64k x p=8); we
        # only check it parses -- evaluating it would be a slow sweep --
        # by sending a tiny neighbouring request instead.
        status, body = _post(server, "/v1/plan", dict(_BODY, top=1))
        assert status == 200 and len(body["plans"]) == 1


class TestSweepEndpoint:
    def test_sweep_launch_and_poll(self, server):
        status, started = _post(
            server,
            "/v1/sweep",
            {
                "seq_lens": ["8k"],
                "pipeline_sizes": [2],
                "schedules": ["1f1b"],
                "options": False,
            },
        )
        assert status == 202 and started["points"] == 1
        for _ in range(200):
            _, body = _get(server, "/v1/sweeps")
            record = body["sweeps"][0]
            if record["state"] != "running":
                break
            threading.Event().wait(0.05)
        assert record["state"] == "done"
        # The sweep pre-filled the shared cache: the matching plan
        # request is served warm.
        _, plan = _post(server, "/v1/plan", _BODY)
        assert plan["outcome"] == "warm"
