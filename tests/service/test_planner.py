"""PlannerService: parsing, dedup, warm/cold accounting, sweeps."""

import threading

import pytest

from repro.service import PlannerService, parse_plan_request, plan_payload
from repro.tuner import CostCache, autotune
from repro.workloads import Workload

# One tiny deterministic workload shared by every evaluation test: a
# 2-stage pipeline at 8k tokens with a single schedule and no option
# axis keeps a cold sweep fast while still exercising the real tuner.
_BODY = {
    "model": "7B",
    "gpu": "H20",
    "p": 2,
    "seq_len": "8k",
    "schedules": ["1f1b"],
    "options": False,
}


def _workload():
    return Workload.paper("7B", "H20", 2, 8192)


class TestParsePlanRequest:
    def test_defaults(self):
        q = parse_plan_request({})
        assert (q.model, q.gpu, q.p, q.seq_len) == ("7B", "H20", 8, 65536)
        assert q.micro_batch == 1 and q.schedules is None
        assert q.options and q.prune and q.top is None

    def test_seq_len_accepts_k_suffix_and_int(self):
        assert parse_plan_request({"seq_len": "64k"}).seq_len == 65536
        assert parse_plan_request({"seq_len": 4096}).seq_len == 4096

    def test_schedules_accepts_list_and_comma_string(self):
        assert parse_plan_request({"schedules": ["1f1b", "helix"]}).schedules \
            == ("1f1b", "helix")
        assert parse_plan_request({"schedules": "1f1b, helix"}).schedules \
            == ("1f1b", "helix")

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ValueError, match="unknown plan request field"):
            parse_plan_request({"sequence_length": 4096})

    def test_unknown_presets_are_rejected(self):
        with pytest.raises(ValueError, match="unknown model preset"):
            parse_plan_request({"model": "70T"})
        with pytest.raises(ValueError, match="unknown GPU preset"):
            parse_plan_request({"gpu": "TPU"})

    @pytest.mark.parametrize(
        "payload",
        [
            {"p": 0},
            {"p": True},
            {"seq_len": -1},
            {"top": 0},
            {"memory_cap_gib": -1},
            {"schedules": []},
            {"options": "yes"},
            {"prune": 1},
        ],
    )
    def test_malformed_values_are_rejected(self, payload):
        with pytest.raises(ValueError):
            parse_plan_request(payload)

    def test_top_does_not_split_the_dedup_key(self):
        a = parse_plan_request(dict(_BODY, top=1))
        b = parse_plan_request(dict(_BODY, top=5))
        wl = a.workload()
        assert a.dedup_key(wl) == b.dedup_key(wl)


class TestPlan:
    def test_matches_direct_autotune_byte_for_byte(self):
        """The service answer serialises a direct autotune run exactly."""
        service = PlannerService()
        response = service.plan(_BODY)
        direct = autotune(
            _workload(), schedules=["1f1b"], option_grids={},
            cache=CostCache(),
        )
        assert response["plans"] == [plan_payload(r) for r in direct]
        best = next(r for r in direct if r.feasible)
        assert response["best"] == plan_payload(best)

    def test_cold_then_warm(self):
        service = PlannerService()
        first = service.plan(_BODY)
        assert first["outcome"] == "cold"
        misses = service.cache.stats.misses
        second = service.plan(_BODY)
        assert second["outcome"] == "warm"
        # Warm requests are served from the cache: no new evaluations.
        assert service.cache.stats.misses == misses
        assert second["plans"] == first["plans"]
        t = service.telemetry.as_dict()
        assert (t["plans_cold"], t["plans_warm"]) == (1, 1)

    def test_top_truncates_response_not_search(self):
        service = PlannerService()
        full = service.plan(_BODY)
        topped = service.plan(dict(_BODY, top=1))
        assert len(topped["plans"]) == 1
        assert topped["plan_count"] == full["plan_count"] > 1
        assert topped["plans"][0] == full["plans"][0]

    def test_identical_concurrent_requests_coalesce_to_one_cold_eval(self):
        """N identical in-flight requests -> exactly one cold evaluation."""
        service = PlannerService()
        n = 6
        barrier = threading.Barrier(n)
        results = [None] * n

        def request(i):
            barrier.wait()
            results[i] = service.plan(_BODY)

        threads = [threading.Thread(target=request, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        outcomes = sorted(r["outcome"] for r in results)
        assert outcomes.count("cold") == 1
        assert outcomes.count("warm") + outcomes.count("coalesced") == n - 1
        # All callers see the same ranked plans.
        assert all(r["plans"] == results[0]["plans"] for r in results)
        t = service.telemetry.as_dict()
        assert t["plans"] == n and t["plans_cold"] == 1

    def test_leader_failure_propagates_to_followers(self):
        service = PlannerService()
        release = threading.Event()
        calls = []

        def exploding_evaluate(query, workload):
            calls.append(1)
            release.wait(5)
            raise ValueError("boom")

        service._evaluate = exploding_evaluate
        errors = []

        def request():
            try:
                service.plan(_BODY)
            except ValueError as err:
                errors.append(str(err))

        threads = [threading.Thread(target=request) for _ in range(3)]
        for t in threads:
            t.start()
        while not service._inflight:  # leader registered, followers waiting
            pass
        release.set()
        for t in threads:
            t.join()
        assert len(errors) == 3 and all("boom" in e for e in errors)
        assert len(calls) == 1
        # The failed flight is deregistered: a later request retries.
        assert not service._inflight


class TestSweeps:
    def test_background_sweep_prefills_the_cache(self):
        service = PlannerService()
        started = service.start_sweep(
            {
                "model": "7B",
                "gpu": "H20",
                "seq_lens": ["8k"],
                "pipeline_sizes": [2],
                "schedules": ["1f1b"],
                "options": False,
            }
        )
        assert started["state"] == "running" and started["points"] == 1
        deadline = threading.Event()
        for _ in range(200):
            record = service.sweeps()[0]
            if record["state"] != "running":
                break
            deadline.wait(0.05)
        assert record["state"] == "done"
        assert record["candidates"] > 0 and record["error"] is None
        assert service.telemetry.as_dict()["sweeps_completed"] == 1
        # The plan query the sweep anticipated is now answered warm.
        assert service.plan(_BODY)["outcome"] == "warm"

    def test_sweep_rejects_unknown_fields_and_bad_shapes(self):
        service = PlannerService()
        with pytest.raises(ValueError, match="unknown sweep request field"):
            service.start_sweep({"sequence_lengths": [1]})
        with pytest.raises(ValueError, match="seq_lens"):
            service.start_sweep({"seq_lens": []})
        with pytest.raises(ValueError, match="unknown model preset"):
            service.start_sweep({"model": "70T"})
        assert service.telemetry.as_dict()["sweeps_started"] == 0

    def test_failed_sweep_is_recorded_not_raised(self):
        service = PlannerService()
        service.start_sweep(
            {"seq_lens": ["8k"], "pipeline_sizes": [2],
             "schedules": ["no-such-schedule"]}
        )
        for _ in range(200):
            record = service.sweeps()[0]
            if record["state"] != "running":
                break
            threading.Event().wait(0.05)
        assert record["state"] == "failed"
        assert "no-such-schedule" in record["error"]
        assert service.telemetry.as_dict()["sweeps_failed"] == 1


class TestStats:
    def test_stats_shape(self):
        service = PlannerService()
        service.plan(_BODY)
        stats = service.stats()
        assert stats["telemetry"]["plans"] == 1
        cache = stats["cache"]
        assert cache["misses"] > 0 and cache["entries"] == len(service.cache)
        assert cache["backend"] == "memory/json"
        assert stats["sweeps"] == []

    def test_sqlite_backed_service_reports_store_path(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        service = PlannerService(CostCache.open(path))
        assert service.stats()["cache"]["backend"] == "sqlite"
        assert service.stats()["cache"]["path"] == path

    def test_save_cache_persists_json(self, tmp_path):
        path = str(tmp_path / "store" / "plans.json")
        service = PlannerService(save_path=path)
        service.plan(_BODY)
        saved = service.save_cache()
        assert saved == len(service.cache)
        assert len(CostCache.from_file(path)) == saved
