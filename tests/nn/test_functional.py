"""Gradient checks for every primitive op via central differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F

RNG = np.random.default_rng(7)
EPS = 1e-6
TOL = 1e-6


def numgrad(f, x, dout):
    """Central-difference gradient of scalar <f(x), dout>."""
    g = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        hi = float((f(x) * dout).sum())
        x[idx] = orig - EPS
        lo = float((f(x) * dout).sum())
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * EPS)
        it.iternext()
    return g


class TestLinear:
    def test_grad_x_w_b(self):
        x = RNG.normal(size=(3, 2, 4))
        w = RNG.normal(size=(4, 5))
        b = RNG.normal(size=5)
        out, ctx = F.linear_fwd(x, w, b)
        dout = RNG.normal(size=out.shape)
        dx, dw, db = F.linear_bwd(ctx, dout)
        assert np.allclose(dx, numgrad(lambda t: F.linear_fwd(t, w, b)[0], x, dout), atol=TOL)
        assert np.allclose(dw, numgrad(lambda t: F.linear_fwd(x, t, b)[0], w, dout), atol=TOL)
        assert np.allclose(db, numgrad(lambda t: F.linear_fwd(x, w, t)[0], b, dout), atol=TOL)


class TestLayerNorm:
    def test_grads(self):
        x = RNG.normal(size=(3, 2, 6))
        g = RNG.normal(size=6)
        b = RNG.normal(size=6)
        out, ctx = F.layer_norm_fwd(x, g, b)
        dout = RNG.normal(size=out.shape)
        dx, dg, db = F.layer_norm_bwd(ctx, dout)
        assert np.allclose(dx, numgrad(lambda t: F.layer_norm_fwd(t, g, b)[0], x, dout), atol=TOL)
        assert np.allclose(dg, numgrad(lambda t: F.layer_norm_fwd(x, t, b)[0], g, dout), atol=TOL)
        assert np.allclose(db, numgrad(lambda t: F.layer_norm_fwd(x, g, t)[0], b, dout), atol=TOL)

    def test_normalises(self):
        x = RNG.normal(size=(4, 2, 8)) * 10 + 3
        out, _ = F.layer_norm_fwd(x, np.ones(8), np.zeros(8))
        assert np.allclose(out.mean(-1), 0, atol=1e-10)
        assert np.allclose(out.var(-1), 1, atol=1e-3)


class TestGelu:
    def test_grad(self):
        x = RNG.normal(size=(3, 2, 5))
        out, ctx = F.gelu_fwd(x)
        dout = RNG.normal(size=out.shape)
        dx = F.gelu_bwd(ctx, dout)
        assert np.allclose(dx, numgrad(lambda t: F.gelu_fwd(t)[0], x, dout), atol=TOL)

    def test_known_values(self):
        out, _ = F.gelu_fwd(np.array([0.0]))
        assert out[0] == pytest.approx(0.0)
        out, _ = F.gelu_fwd(np.array([100.0]))
        assert out[0] == pytest.approx(100.0)


class TestAttention:
    def test_grad(self):
        s, b, h, nh = 5, 2, 8, 2
        qkv = RNG.normal(size=(s, b, 3 * h))
        out, ctx = F.causal_attention_fwd(qkv, nh)
        dout = RNG.normal(size=out.shape)
        dqkv = F.causal_attention_bwd(ctx, dout)
        ref = numgrad(lambda t: F.causal_attention_fwd(t, nh)[0], qkv, dout)
        assert np.allclose(dqkv, ref, atol=1e-5)

    def test_causality(self):
        """Changing future tokens must not affect earlier outputs."""
        s, b, h, nh = 6, 1, 4, 2
        qkv = RNG.normal(size=(s, b, 3 * h))
        out1, _ = F.causal_attention_fwd(qkv, nh)
        qkv2 = qkv.copy()
        qkv2[-1] += 100.0
        out2, _ = F.causal_attention_fwd(qkv2, nh)
        assert np.allclose(out1[:-1], out2[:-1])

    def test_probs_rows_sum_to_one(self):
        qkv = RNG.normal(size=(4, 1, 6))
        _, (_, probs, _) = F.causal_attention_fwd(qkv, 2)
        assert np.allclose(probs.sum(-1), 1.0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=2))
    @settings(max_examples=10, deadline=None)
    def test_output_shape(self, s, b):
        qkv = RNG.normal(size=(s, b, 12))
        out, _ = F.causal_attention_fwd(qkv, 2)
        assert out.shape == (s, b, 4)


class TestEmbedding:
    def test_grad_accumulates_repeats(self):
        tokens = np.array([[1, 1], [1, 2]])  # token 1 appears 3 times
        wte = RNG.normal(size=(5, 4))
        wpe = RNG.normal(size=(8, 4))
        out, ctx = F.embedding_fwd(tokens, wte, wpe)
        dout = np.ones_like(out)
        dwte, dwpe = F.embedding_bwd(ctx, dout)
        assert np.allclose(dwte[1], 3.0)
        assert np.allclose(dwte[2], 1.0)
        assert np.allclose(dwte[0], 0.0)
        assert np.allclose(dwpe[0], 2.0)  # summed over batch
        assert np.allclose(dwpe[2:], 0.0)

    def test_forward_adds_positions(self):
        tokens = np.zeros((2, 1), dtype=int)
        wte = np.zeros((3, 2))
        wpe = np.arange(8).reshape(4, 2).astype(float)
        out, _ = F.embedding_fwd(tokens, wte, wpe)
        assert np.allclose(out[1, 0], wpe[1])


class TestCrossEntropy:
    def test_grad(self):
        logits = RNG.normal(size=(3, 2, 7))
        targets = RNG.integers(0, 7, size=(3, 2))
        loss, ctx = F.cross_entropy_fwd(logits, targets)
        dlogits = F.cross_entropy_bwd(ctx)
        ref = numgrad(
            lambda t: np.array(F.cross_entropy_fwd(t, targets)[0]), logits, np.array(1.0)
        )
        assert np.allclose(dlogits, ref, atol=TOL)

    def test_perfect_prediction_low_loss(self):
        targets = np.array([[0, 1]])
        logits = np.full((1, 2, 3), -100.0)
        logits[0, 0, 0] = logits[0, 1, 1] = 100.0
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss < 1e-6

    def test_uniform_loss_is_log_v(self):
        v = 11
        logits = np.zeros((2, 2, v))
        targets = np.zeros((2, 2), dtype=int)
        loss, _ = F.cross_entropy_fwd(logits, targets)
        assert loss == pytest.approx(np.log(v))
