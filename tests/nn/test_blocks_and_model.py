"""Phase blocks, the reference GPT, and optimizers."""

import numpy as np
import pytest

from repro.model import tiny_config
from repro.nn import Adam, GPTModel, SGD, blocks


RNG = np.random.default_rng(21)


def _layer_params(h=8):
    return blocks.init_layer_params(np.random.default_rng(0), h)


class TestPhaseBlocks:
    def test_shipping_is_equivalent_forward(self):
        """pre+attention compose to the same value whether the QKV linear
        runs on the pre side or is shipped to the attention side."""
        lp = _layer_params()
        a = RNG.normal(size=(6, 2, 8))
        qkv_local, _ = blocks.pre_attention_fwd(lp, a, ship_qkv=False)
        out_local, _ = blocks.attention_fwd(qkv_local, num_heads=2)
        x, _ = blocks.pre_attention_fwd(lp, a, ship_qkv=True)
        out_ship, _ = blocks.attention_fwd(
            x, num_heads=2, shipped_w=(lp["w_qkv"], lp["b_qkv"])
        )
        np.testing.assert_allclose(out_local, out_ship, atol=1e-12)

    def test_post_attention_residuals(self):
        """Zeroing the MLP and O weights must reduce post to identity on
        the residual stream."""
        lp = _layer_params()
        lp = {k: np.zeros_like(v) for k, v in lp.items()}
        lp["ln2_g"] = np.ones_like(lp["ln2_g"])
        a = RNG.normal(size=(4, 1, 8))
        attn_out = RNG.normal(size=(4, 1, 8))
        z, _ = blocks.post_attention_fwd(lp, attn_out, a)
        np.testing.assert_allclose(z, a, atol=1e-12)

    def test_pre_bwd_grads_subset_when_shipped(self):
        lp = _layer_params()
        a = RNG.normal(size=(4, 1, 8))
        x, ctx = blocks.pre_attention_fwd(lp, a, ship_qkv=True)
        _, grads = blocks.pre_attention_bwd(ctx, np.ones_like(x))
        assert set(grads) == {"ln1_g", "ln1_b"}

    def test_head_loss_scalar(self):
        hp = blocks.init_head_params(np.random.default_rng(1), vocab=16, h=8)
        z = RNG.normal(size=(4, 1, 8))
        targets = RNG.integers(0, 16, size=(4, 1))
        loss, _ = blocks.head_fwd(hp, z, targets)
        assert np.isscalar(loss) or loss.shape == ()


class TestGPTModel:
    def setup_method(self):
        self.cfg = tiny_config(num_layers=2, num_heads=2, hidden_size=16, vocab_size=32)
        self.model = GPTModel.init(self.cfg, max_seq=8, seed=1)
        rng = np.random.default_rng(2)
        self.tokens = rng.integers(0, 32, size=(2, 8, 2))
        self.targets = rng.integers(0, 32, size=(2, 8, 2))

    def test_deterministic_init(self):
        m2 = GPTModel.init(self.cfg, max_seq=8, seed=1)
        np.testing.assert_array_equal(self.model.embed["wte"], m2.embed["wte"])

    def test_grad_shapes_match_params(self):
        _, grads = self.model.forward_backward_batch(self.tokens, self.targets)
        flat = grads.flat()
        for i, lp in enumerate(self.model.layers):
            for k, v in lp.items():
                assert flat[f"layer{i}.{k}"].shape == v.shape

    def test_loss_near_log_vocab_at_init(self):
        losses, _ = self.model.forward_backward_batch(self.tokens, self.targets)
        assert abs(np.mean(losses) - np.log(32)) < 0.5

    def test_grad_is_descent_direction(self):
        losses, grads = self.model.forward_backward_batch(self.tokens, self.targets)
        SGD(lr=1e-2).step(self.model, grads)
        losses2, _ = self.model.forward_backward_batch(self.tokens, self.targets)
        assert np.mean(losses2) < np.mean(losses)

    def test_gradients_accumulate_over_micro_batches(self):
        _, g_all = self.model.forward_backward_batch(self.tokens, self.targets)
        g0 = self.model.zero_grads()
        self.model.forward_backward_micro_batch(self.tokens[0], self.targets[0], g0)
        g1 = self.model.zero_grads()
        self.model.forward_backward_micro_batch(self.tokens[1], self.targets[1], g1)
        np.testing.assert_allclose(
            g_all.embed["wte"], g0.embed["wte"] + g1.embed["wte"], atol=1e-12
        )


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kw):
        cfg = tiny_config(num_layers=2, num_heads=2, hidden_size=16, vocab_size=32)
        model = GPTModel.init(cfg, max_seq=8, seed=4)
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, 32, size=(2, 8, 2))
        targets = rng.integers(0, 32, size=(2, 8, 2))
        opt = opt_cls(**kw)
        losses = []
        for _ in range(8):
            ls, grads = model.forward_backward_batch(tokens, targets)
            losses.append(float(np.mean(ls)))
            opt.step(model, grads)
        return losses

    def test_sgd_reduces_loss(self):
        losses = self._quadratic_step(SGD, lr=5e-2)
        assert losses[-1] < losses[0]

    def test_sgd_momentum_reduces_loss(self):
        losses = self._quadratic_step(SGD, lr=2e-2, momentum=0.9)
        assert losses[-1] < losses[0]

    def test_adam_reduces_loss(self):
        losses = self._quadratic_step(Adam, lr=1e-2)
        assert losses[-1] < losses[0]

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            Adam(lr=-1.0)
