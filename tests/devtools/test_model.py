"""AST extraction model: locks, guarded fields, held-sets, resolution."""

import ast
import textwrap

from repro.devtools.concurrency.model import (
    ProjectModel,
    build_model,
    parse_module,
)


def project(*sources: str) -> ProjectModel:
    """Build a ProjectModel over synthetic module sources."""
    names = set()
    cleaned = [textwrap.dedent(src) for src in sources]
    for src in cleaned:
        tree = ast.parse(src)
        names.update(
            n.name for n in tree.body if isinstance(n, ast.ClassDef)
        )
    modules = [
        parse_module(src, f"mod{i}.py", names)
        for i, src in enumerate(cleaned)
    ]
    return ProjectModel(modules)


class TestLockDiscovery:
    def test_init_assigned_locks(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rlock = threading.RLock()
            """
        )
        cls = model.classes["S"]
        assert cls.locks == {"_lock": "Lock", "_rlock": "RLock"}
        assert model.lock_kind("S._lock") == "Lock"
        assert model.lock_kind("S._rlock") == "RLock"

    def test_dataclass_field_lock(self):
        model = project(
            """
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class T:
                count: int = 0  # guarded-by: _lock
                _lock: threading.Lock = field(
                    default_factory=threading.Lock, repr=False
                )
            """
        )
        cls = model.classes["T"]
        assert "_lock" in cls.locks
        assert cls.guarded["count"] == "_lock"

    def test_module_level_lock(self):
        model = project(
            """
            import threading

            _REGISTRY_LOCK = threading.Lock()

            def register(x):
                with _REGISTRY_LOCK:
                    return x
            """
        )
        mod = model.modules[0]
        assert mod.module_locks == {"_REGISTRY_LOCK": "Lock"}
        fn = mod.functions["register"]
        assert [a.label for a in fn.acquisitions] == ["mod0._REGISTRY_LOCK"]


class TestGuardedDeclarations:
    def test_comment_on_init_assignment(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded-by: _lock
            """
        )
        assert model.classes["S"].guarded == {"_items": "_lock"}

    def test_module_registry(self):
        model = project(
            """
            import threading

            GUARDED_FIELDS = {"S": {"_items": "_lock"}}

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}
            """
        )
        assert model.classes["S"].guarded == {"_items": "_lock"}

    def test_seed_registry_applies_to_known_classes(self):
        model = project(
            """
            import threading

            class PlannerService:
                def __init__(self):
                    self._inflight_lock = threading.Lock()
                    self._inflight = {}
            """
        )
        cls = model.classes["PlannerService"]
        assert cls.guarded["_inflight"] == "_inflight_lock"


class TestHeldTracking:
    def test_access_inside_and_outside_with(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded-by: _lock

                def locked(self, k):
                    with self._lock:
                        return self._items[k]

                def unlocked(self, k):
                    return self._items[k]
            """
        )
        cls = model.classes["S"]
        locked = [
            a for a in cls.methods["locked"].accesses if a.field == "_items"
        ]
        assert locked and all(
            any(h.label == "S._lock" for h in a.held) for a in locked
        )
        unlocked = [
            a for a in cls.methods["unlocked"].accesses if a.field == "_items"
        ]
        assert unlocked and all(not a.held for a in unlocked)

    def test_nested_function_does_not_inherit_held(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded-by: _lock

                def outer(self):
                    with self._lock:
                        def later():
                            return self._items
                        return later
            """
        )
        mod = model.modules[0]
        nested = next(
            fn for name, fn in mod.functions.items() if "later" in name
        )
        accesses = [a for a in nested.accesses if a.field == "_items"]
        assert accesses and all(not a.held for a in accesses)

    def test_nested_with_builds_held_chain(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def both(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )
        fn = model.classes["S"].methods["both"]
        inner = next(a for a in fn.acquisitions if a.label == "S._b")
        assert [h.label for h in inner.held] == ["S._a"]


class TestCallResolution:
    def test_self_method_resolves(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        fn = model.classes["S"].methods["outer"]
        call = next(c for c in fn.calls if c.name == "inner")
        resolved = model.resolve_call(call, fn)
        assert [r.name for r in resolved] == ["inner"]

    def test_attribute_method_is_not_a_self_call(self):
        """``self._data.clear()`` must not resolve to ``self.clear()``."""
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def clear(self):
                    with self._lock:
                        self._data.clear()
            """
        )
        fn = model.classes["S"].methods["clear"]
        call = next(c for c in fn.calls if c.name == "clear")
        assert model.resolve_call(call, fn) == []

    def test_typed_attribute_resolves_cross_class(self):
        model = project(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def put(self, k):
                    with self._lock:
                        pass

            class Service:
                def __init__(self, store: Store):
                    self._store = store

                def write(self, k):
                    self._store.put(k)
            """
        )
        fn = model.classes["Service"].methods["write"]
        call = next(c for c in fn.calls if c.name == "put")
        assert [r.qualname for r in model.resolve_call(call, fn)] == [
            "mod0.Store.put"
        ]

    def test_may_acquire_fixpoint_crosses_calls(self):
        model = project(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def put(self, k):
                    with self._lock:
                        pass

            class Service:
                def __init__(self, store: Store):
                    self._store = store

                def write(self, k):
                    self._store.put(k)
            """
        )
        acq = model.may_acquire()
        assert "Store._lock" in acq["mod0.Service.write"]


class TestBlockingAndSpawns:
    def test_blocking_kinds_detected(self):
        model = project(
            """
            import subprocess, time, os

            class S:
                def run(self):
                    subprocess.run(["true"])
                    time.sleep(1)
                    os.replace("a", "b")
                    with open("f") as fh:
                        fh.read()
            """
        )
        kinds = {b.kind for b in model.classes["S"].methods["run"].blocking}
        assert {"subprocess", "sleep", "file-io"} <= kinds

    def test_tracked_vs_untracked_spawn(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._threads = []

                def tracked(self):
                    t = threading.Thread(target=self.work, daemon=True)
                    self._threads.append(t)
                    t.start()

                def untracked(self):
                    t = threading.Thread(target=self.work, daemon=True)
                    t.start()

                def work(self):
                    pass
            """
        )
        cls = model.classes["S"]
        assert cls.methods["tracked"].spawns[0].tracked
        spawn = cls.methods["untracked"].spawns[0]
        assert not spawn.tracked and spawn.daemon


class TestAllowlist:
    def test_allow_comment_parsed(self):
        model = project(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded-by: _lock

                def peek(self):
                    return self._items  # lint-code: allow(guarded-by) -- snapshot read
            """
        )
        mod = model.modules[0]
        fn = model.classes["S"].methods["peek"]
        access = fn.accesses[0]
        assert mod.allowed(access.line, "guarded-by")
        assert not mod.allowed(access.line, "lock-order")

    def test_allow_star(self):
        model = project(
            """
            class S:
                def f(self):
                    return 1  # lint-code: allow(*) -- anything goes here
            """
        )
        mod = model.modules[0]
        line = model.classes["S"].methods["f"].line + 1
        assert mod.allowed(line, "guarded-by")
        assert mod.allowed(line, "thread-hygiene")


class TestBuildModel:
    def test_sweeps_real_source_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text(
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        )
        (pkg / "b.py").write_text("x = 1\n")
        model = build_model([pkg])
        assert {m.name for m in model.modules} == {"a", "b"}
        assert "A" in model.classes
