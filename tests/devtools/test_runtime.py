"""Runtime lock-order verification: recorder, proxies, static cross-check.

The last class is the acceptance gate the ISSUE names: instrument every
lock in a live :class:`PlannerService` stack (service, telemetry, cost
cache, sqlite store), drive real mixed traffic through it, and require
the *observed* acquisition orders to be consistent with the static
lock-order graph -- the same reality-check PR 7 ran for the static
peak-memory pass against the simulator.
"""

import threading

import pytest

from repro.devtools.concurrency import (
    LockOrderRecorder,
    RecordingLock,
    build_model,
    instrument,
    verify_lock_order,
)
from repro.devtools.concurrency.lockorder import static_lock_graph
from repro.service import PlannerService
from repro.tuner import CostCache

from tests.devtools.test_model import project
from tests.devtools.test_passes import _REPO_ROOT

_BODY = {
    "model": "7B",
    "gpu": "H20",
    "p": 2,
    "seq_len": "8k",
    "schedules": ["1f1b"],
    "options": False,
}


class TestRecorder:
    def test_nested_acquisition_records_edge(self):
        rec = LockOrderRecorder()
        a = RecordingLock(threading.Lock(), "A", rec)
        b = RecordingLock(threading.Lock(), "B", rec)
        with a:
            with b:
                pass
        assert rec.edges() == {("A", "B"): 1}
        assert rec.acquisitions() == {"A": 1, "B": 1}

    def test_release_order_tracked_per_thread(self):
        rec = LockOrderRecorder()
        a = RecordingLock(threading.Lock(), "A", rec)
        b = RecordingLock(threading.Lock(), "B", rec)
        with a:
            pass
        with b:
            with a:
                pass
        assert set(rec.edges()) == {("B", "A")}

    def test_threads_do_not_see_each_others_stacks(self):
        rec = LockOrderRecorder()
        a = RecordingLock(threading.Lock(), "A", rec)
        b = RecordingLock(threading.Lock(), "B", rec)
        gate = threading.Barrier(2)

        def hold(lock):
            gate.wait()
            with lock:
                gate.wait()
                gate.wait()

        t1 = threading.Thread(target=hold, args=(a,))
        t2 = threading.Thread(target=hold, args=(b,))
        t1.start(), t2.start()
        t1.join(), t2.join()
        # Each thread held exactly one lock; concurrent holds across
        # threads are not an ordering.
        assert rec.edges() == {}

    def test_reentrant_reacquire_is_not_a_self_edge(self):
        rec = LockOrderRecorder()
        r = RecordingLock(threading.RLock(), "R", rec)
        with r:
            with r:
                pass
        assert rec.edges() == {}


class TestInstrument:
    def test_wraps_lock_attributes_with_class_labels(self):
        class Thing:
            def __init__(self):
                self._lock = threading.Lock()
                self.data = {}

        rec = LockOrderRecorder()
        thing = Thing()
        labels = instrument(thing, rec)
        assert labels == ["Thing._lock"]
        assert isinstance(thing._lock, RecordingLock)
        with thing._lock:
            pass
        assert rec.acquisitions() == {"Thing._lock": 1}

    def test_idempotent(self):
        class Thing:
            def __init__(self):
                self._lock = threading.Lock()

        rec = LockOrderRecorder()
        thing = Thing()
        instrument(thing, rec)
        assert instrument(thing, rec) == []


class TestVerifyLockOrder:
    def _model(self):
        return project(
            """
            import threading

            class S:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def both(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )

    def test_consistent_when_runtime_matches_static(self):
        rec = LockOrderRecorder()
        rec.on_acquire("S._a")
        rec.on_acquire("S._b")
        verdict = verify_lock_order(self._model(), rec)
        assert verdict.consistent
        assert verdict.extra_edges == []

    def test_inversion_is_flagged(self):
        rec = LockOrderRecorder()
        rec.on_acquire("S._b")
        rec.on_acquire("S._a")
        verdict = verify_lock_order(self._model(), rec)
        assert not verdict.consistent
        assert ("S._b", "S._a") in verdict.inversions
        assert "INCONSISTENT" in verdict.format()

    def test_extra_acyclic_edge_is_consistent(self):
        rec = LockOrderRecorder()
        rec.on_acquire("S._a")
        rec.on_acquire("Other._c")
        verdict = verify_lock_order(self._model(), rec)
        assert verdict.consistent
        assert ("S._a", "Other._c") in verdict.extra_edges


class TestServiceCrossCheck:
    """Acceptance: runtime lock orders from real service traffic are
    consistent with the static graph (folded into tier-1 by living in
    this suite)."""

    @pytest.fixture(scope="class")
    def observed(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("crosscheck") / "cache.sqlite"
        cache = CostCache.open(path)
        service = PlannerService(
            cache, save_path=str(path), save_backend="sqlite"
        )
        rec = LockOrderRecorder()
        for obj in (service, service.telemetry, cache, cache.store):
            assert instrument(obj, rec)

        def plan():
            service.telemetry.record_request("/v1/plan")
            service.plan(_BODY)

        threads = [threading.Thread(target=plan) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.start_sweep(
            {
                "model": "7B",
                "seq_lens": ["8k"],
                "pipeline_sizes": [2],
                "schedules": ["1f1b"],
                "options": False,
            }
        )
        service.stats()
        service.close()
        return rec

    def test_core_locks_were_exercised(self, observed):
        acquired = observed.acquisitions()
        assert acquired.get("PlannerService._eval_lock")
        assert acquired.get("PlannerService._inflight_lock")
        assert acquired.get("CostCache._lock")
        assert acquired.get("SqliteCostStore._conns_lock")
        assert acquired.get("ServiceTelemetry._lock")

    def test_runtime_order_consistent_with_static_graph(self, observed):
        model = build_model(
            [
                f"{_REPO_ROOT}/src/repro/service",
                f"{_REPO_ROOT}/src/repro/tuner",
            ]
        )
        # Sanity: the static graph predicts the service's core edges.
        static = set(static_lock_graph(model))
        assert ("PlannerService._eval_lock", "CostCache._lock") in static
        verdict = verify_lock_order(model, observed)
        assert verdict.consistent, verdict.format()
        # The real traffic must have exercised at least one static edge.
        assert set(verdict.observed) & static
