"""Mutation suite: each pass catches its seeded regression; clean tree is clean.

Each test takes a correct baseline source, seeds the one defect the
ISSUE names (dropped lock guard, inverted lock order, blocking call
under lock, untracked daemon thread) and asserts the *named* pass --
and only a pass of matching severity -- reports it, while the baseline
comes back clean.  The final class sweeps the repo's real threaded
packages and requires zero findings, which is the same gate CI's
``code-lint`` job enforces.
"""

import os
import textwrap

import pytest

from repro.devtools.concurrency import (
    CodeIssue,
    Severity,
    lint_code,
    report_passes_gate,
    run_code_analysis,
)
from repro.devtools.concurrency.framework import (
    CodeAnalysisReport,
    CodePass,
    format_code_issue_table,
    register_code_pass,
)

from tests.devtools.test_model import project

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def run(*sources: str):
    return run_code_analysis(project(*sources))


def findings(report, pass_name):
    return [i for i in report.issues if i.pass_name == pass_name]


_CLEAN_GUARDED = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}  # guarded-by: _lock

        def add(self, key, value):
            with self._lock:
                self._items[key] = value

        def get(self, key):
            with self._lock:
                return self._items.get(key)
"""


class TestGuardedByMutation:
    def test_baseline_is_clean(self):
        assert run(_CLEAN_GUARDED).ok

    def test_dropped_lock_guard_is_caught(self):
        # Seeded defect: `add` loses its `with self._lock`.
        mutated = _CLEAN_GUARDED.replace(
            """\
        def add(self, key, value):
            with self._lock:
                self._items[key] = value
""",
            """\
        def add(self, key, value):
            self._items[key] = value
""",
        )
        assert mutated != _CLEAN_GUARDED
        report = run(mutated)
        errs = findings(report, "guarded-by")
        assert len(errs) == 1
        issue = errs[0]
        assert issue.severity is Severity.ERROR
        assert issue.symbol == "Service._items"
        assert "written" in issue.message
        assert issue.function.endswith("Service.add")

    def test_init_is_exempt(self):
        # Constructing the dict in __init__ is not a violation.
        report = run(_CLEAN_GUARDED)
        assert not findings(report, "guarded-by")

    def test_allowlisted_access_is_suppressed(self):
        mutated = _CLEAN_GUARDED.replace(
            "                return self._items.get(key)",
            "                return self._items.get(key)\n"
            "\n"
            "        def racy(self, key):\n"
            "            return self._items.get(key)"
            "  # lint-code: allow(guarded-by) -- benign racy read\n",
        )
        assert run(mutated).ok


_CLEAN_ORDER = """
    import threading

    class Pipeline:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def first(self):
            with self._a:
                with self._b:
                    pass

        def second(self):
            with self._a:
                with self._b:
                    pass
"""


class TestLockOrderMutation:
    def test_baseline_is_clean(self):
        assert run(_CLEAN_ORDER).ok

    def test_inverted_acquisitions_are_caught(self):
        # Seeded defect: `second` takes the two locks in the opposite
        # order -- the classic two-thread deadlock.
        mutated = _CLEAN_ORDER.replace(
            """\
        def second(self):
            with self._a:
                with self._b:
                    pass
""",
            """\
        def second(self):
            with self._b:
                with self._a:
                    pass
""",
        )
        assert mutated != _CLEAN_ORDER
        report = run(mutated)
        errs = findings(report, "lock-order")
        assert errs and all(i.severity is Severity.ERROR for i in errs)
        assert any("cycle" in i.message for i in errs)

    def test_cycle_through_call_chain_is_caught(self):
        report = run(
            """
            import threading

            class Pipeline:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._take_b()

                def _take_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        self._take_a()

                def _take_a(self):
                    with self._a:
                        pass
            """
        )
        errs = findings(report, "lock-order")
        assert any("cycle" in i.message for i in errs)

    def test_self_reacquire_plain_lock_is_error(self):
        report = run(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        errs = findings(report, "lock-order")
        assert any("re-acquired" in i.message for i in errs)

    def test_self_reacquire_rlock_is_fine(self):
        report = run(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        assert not findings(report, "lock-order")


_CLEAN_BLOCKING = """
    import subprocess
    import threading

    class Runner:
        def __init__(self):
            self._lock = threading.Lock()
            self._results = []  # guarded-by: _lock

        def run(self, cmd):
            out = subprocess.run(cmd)
            with self._lock:
                self._results.append(out)
"""


class TestBlockingUnderLockMutation:
    def test_baseline_is_clean(self):
        assert run(_CLEAN_BLOCKING).ok

    def test_blocking_call_under_lock_is_caught(self):
        # Seeded defect: the subprocess call moves inside the lock.
        mutated = _CLEAN_BLOCKING.replace(
            """\
        def run(self, cmd):
            out = subprocess.run(cmd)
            with self._lock:
                self._results.append(out)
""",
            """\
        def run(self, cmd):
            with self._lock:
                out = subprocess.run(cmd)
                self._results.append(out)
""",
        )
        assert mutated != _CLEAN_BLOCKING
        report = run(mutated)
        warns = findings(report, "blocking-under-lock")
        assert len(warns) == 1
        issue = warns[0]
        assert issue.severity is Severity.WARNING
        assert "subprocess" in issue.message
        assert issue.symbol == "Runner._lock"
        # WARNINGs do not fail plain lint but do fail --strict.
        assert report.ok
        assert not report_passes_gate(report, strict=True)

    def test_allow_on_with_line_suppresses_whole_block(self):
        report = run(
            """
            import subprocess
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()

                def run(self, cmd):
                    with self._lock:  # lint-code: allow(blocking-under-lock) -- deliberate
                        return subprocess.run(cmd)
            """
        )
        assert not findings(report, "blocking-under-lock")

    def test_blocking_through_call_chain_is_caught(self):
        report = run(
            """
            import sqlite3
            import threading

            class Store:
                def query(self, conn):
                    return conn.execute("SELECT 1")

            class Service:
                def __init__(self, store: Store):
                    self._lock = threading.Lock()
                    self._store = store

                def lookup(self, conn):
                    with self._lock:
                        return self._store.query(conn)
            """
        )
        warns = findings(report, "blocking-under-lock")
        assert any("sqlite" in i.message for i in warns)


_CLEAN_HYGIENE = """
    import threading

    class Sweeper:
        def __init__(self):
            self._threads = []

        def start(self):
            t = threading.Thread(target=self._work, daemon=True)
            self._threads.append(t)
            t.start()

        def _work(self):
            pass

        def close(self):
            for t in self._threads:
                t.join()
"""


class TestThreadHygieneMutation:
    def test_baseline_is_clean(self):
        assert run(_CLEAN_HYGIENE).ok

    def test_untracked_daemon_thread_is_caught(self):
        # Seeded defect: the spawn is no longer stored anywhere.
        mutated = _CLEAN_HYGIENE.replace(
            """\
        def start(self):
            t = threading.Thread(target=self._work, daemon=True)
            self._threads.append(t)
            t.start()
""",
            """\
        def start(self):
            t = threading.Thread(target=self._work, daemon=True)
            t.start()
""",
        )
        assert mutated != _CLEAN_HYGIENE
        report = run(mutated)
        errs = findings(report, "thread-hygiene")
        assert len(errs) == 1
        issue = errs[0]
        assert issue.severity is Severity.ERROR
        assert "daemon thread" in issue.message

    def test_untracked_non_daemon_is_warning(self):
        report = run(
            """
            import threading

            class S:
                def go(self):
                    t = threading.Thread(target=print)
                    t.start()
            """
        )
        issues = findings(report, "thread-hygiene")
        assert issues and issues[0].severity is Severity.WARNING

    def test_thread_local_without_close_is_flagged(self):
        report = run(
            """
            import threading

            class Store:
                def __init__(self):
                    self._local = threading.local()
            """
        )
        issues = findings(report, "thread-hygiene")
        assert issues and "close()" in issues[0].message

    def test_thread_local_with_close_is_clean(self):
        report = run(
            """
            import threading

            class Store:
                def __init__(self):
                    self._local = threading.local()

                def close(self):
                    pass
            """
        )
        assert not findings(report, "thread-hygiene")


class TestFramework:
    def test_duplicate_registration_rejected(self):
        register_code_pass("test-dup-pass", description="x")(lambda m: [])
        with pytest.raises(ValueError, match="already registered"):
            register_code_pass("test-dup-pass")(lambda m: [])

    def test_requires_skips_after_prereq_errors(self):
        model = project("x = 1")
        broken = CodePass(
            name="prereq",
            fn=lambda m: [CodeIssue("prereq", "boom")],
        )
        gated = CodePass(name="dependent", fn=lambda m: [], requires=("prereq",))
        report = run_code_analysis(model, passes=[broken, gated])
        assert report.passes_run == ("prereq",)
        assert "dependent" in report.skipped

    def test_report_json_round_trips(self):
        report = CodeAnalysisReport(
            files=("a.py",),
            issues=[
                CodeIssue(
                    "guarded-by",
                    "msg",
                    file="a.py",
                    line=3,
                    function="a.S.f",
                    symbol="S.x",
                )
            ],
            passes_run=("guarded-by",),
        )
        payload = report.to_json_dict()
        assert payload["ok"] is False
        assert payload["issues"][0]["pass"] == "guarded-by"
        assert payload["issues"][0]["line"] == 3
        table = format_code_issue_table(report.issues)
        assert "guarded-by" in table and "a.py:3" in table

    def test_gate_semantics(self):
        warn_only = CodeAnalysisReport(
            issues=[CodeIssue("p", "w", severity=Severity.WARNING)]
        )
        assert report_passes_gate(warn_only)
        assert not report_passes_gate(warn_only, strict=True)
        err = CodeAnalysisReport(issues=[CodeIssue("p", "e")])
        assert not report_passes_gate(err)
        assert not report_passes_gate(err, strict=True)


class TestCleanTree:
    def test_repo_threaded_packages_have_zero_findings(self):
        """The acceptance gate: the real service/tuner sweep is clean."""
        report, _model = lint_code(root=_REPO_ROOT)
        assert report.issues == [], report.format()

    def test_sweep_covers_the_threaded_modules(self):
        report, model = lint_code(root=_REPO_ROOT)
        files = {os.path.basename(p) for p in report.files}
        assert {"planner.py", "telemetry.py", "cache.py", "store.py"} <= files
        # The known lock hierarchy must be visible to the model.
        assert "PlannerService" in model.classes
        assert "CostCache" in model.classes
        assert model.classes["CostCache"].guarded["_data"] == "_lock"
