"""The paper's correctness claim, checked exactly (Section 4.1).

"While HelixPipe schedules the execution of different micro batches for
different layer components, it preserves the computation order for
individual micro batches ... it maintains the same computation semantics
and convergence as 1F1B or ZB1P."

Every schedule below runs the same tiny GPT on isolated virtual devices
(communicating only through schedule messages) and must produce the same
per-micro-batch losses and the same gradient for *every parameter* as the
single-device reference, to float64 accuracy.
"""

import numpy as np
import pytest

from repro.core.filo import build_helix_filo
from repro.costmodel import RecomputeStrategy
from repro.model import tiny_config
from repro.nn import GPTModel
from repro.runtime import run_schedule
from repro.schedules.costs import UnitCosts
from repro.schedules.gpipe import build_gpipe
from repro.schedules.one_f_one_b import build_1f1b
from repro.schedules.zb1p import build_zb1p

S, B, M = 8, 2, 4
CFG = tiny_config(num_layers=4, num_heads=2, hidden_size=16, vocab_size=32)
ATOL = 1e-10


@pytest.fixture(scope="module")
def setup():
    model = GPTModel.init(CFG, max_seq=S, seed=3)
    rng = np.random.default_rng(11)
    tokens = rng.integers(0, CFG.vocab_size, size=(M, S, B))
    targets = rng.integers(0, CFG.vocab_size, size=(M, S, B))
    losses, grads = model.forward_backward_batch(tokens, targets)
    return model, tokens, targets, losses, grads.flat()


def _check(result, ref_losses, ref_grads):
    assert sorted(result.losses) == list(range(M))
    for i, ref in enumerate(ref_losses):
        assert result.losses[i] == pytest.approx(ref, abs=ATOL)
    assert set(result.grads) == set(ref_grads)
    for k, ref in ref_grads.items():
        np.testing.assert_allclose(result.grads[k], ref, atol=ATOL, err_msg=k)


class TestLayerwiseEquivalence:
    @pytest.mark.parametrize("builder", [build_1f1b, build_gpipe, build_zb1p])
    def test_matches_reference(self, setup, builder):
        model, tokens, targets, ref_losses, ref_grads = setup
        costs = UnitCosts(num_layers=CFG.num_layers)
        sched = builder(2, M, costs)
        result = run_schedule(model, sched, tokens, targets)
        _check(result, ref_losses, ref_grads)

    def test_four_stages(self, setup):
        model, tokens, targets, ref_losses, ref_grads = setup
        costs = UnitCosts(num_layers=CFG.num_layers)
        sched = build_1f1b(4, M, costs)
        result = run_schedule(model, sched, tokens, targets)
        _check(result, ref_losses, ref_grads)

    def test_full_recompute_identical_gradients(self, setup):
        model, tokens, targets, ref_losses, ref_grads = setup
        costs = UnitCosts(num_layers=CFG.num_layers, recompute=RecomputeStrategy.FULL)
        sched = build_1f1b(2, M, costs)
        result = run_schedule(
            model, sched, tokens, targets, recompute=RecomputeStrategy.FULL
        )
        _check(result, ref_losses, ref_grads)


class TestHelixEquivalence:
    @pytest.mark.parametrize("fold,p", [(1, 2), (2, 2), (1, 4), (2, 4)])
    @pytest.mark.parametrize("ship", [False, True])
    def test_matches_reference(self, setup, fold, p, ship):
        model, tokens, targets, ref_losses, ref_grads = setup
        if fold * p > M:
            pytest.skip("loop larger than batch")
        costs = UnitCosts(num_layers=CFG.num_layers)
        sched = build_helix_filo(p, M, costs, fold=fold)
        result = run_schedule(model, sched, tokens, targets, ship_qkv=ship)
        _check(result, ref_losses, ref_grads)

    @pytest.mark.parametrize("ship", [False, True])
    def test_recompute_without_attention(self, setup, ship):
        """Recomputation must not change a single gradient bit-level-ish."""
        model, tokens, targets, ref_losses, ref_grads = setup
        costs = UnitCosts(
            num_layers=CFG.num_layers,
            recompute=RecomputeStrategy.WITHOUT_ATTENTION,
        )
        sched = build_helix_filo(2, M, costs, fold=2)
        result = run_schedule(
            model,
            sched,
            tokens,
            targets,
            recompute=RecomputeStrategy.WITHOUT_ATTENTION,
            ship_qkv=ship,
        )
        _check(result, ref_losses, ref_grads)

    def test_ship_qkv_on_single_device_reference(self, setup):
        """The weight-shipping formulation itself is semantics-preserving."""
        model, tokens, targets, ref_losses, ref_grads = setup
        losses2, grads2 = model.forward_backward_batch(tokens, targets, ship_qkv=True)
        for a, b in zip(ref_losses, losses2):
            assert a == pytest.approx(b, abs=ATOL)
        for k, v in grads2.flat().items():
            np.testing.assert_allclose(v, ref_grads[k], atol=ATOL)


class TestRuntimeGuards:
    def test_micro_batch_mismatch(self, setup):
        model, tokens, targets, *_ = setup
        sched = build_1f1b(2, M, UnitCosts(num_layers=CFG.num_layers))
        with pytest.raises(ValueError, match="micro batches"):
            run_schedule(model, sched, tokens[:2], targets[:2])

    def test_selective_not_supported(self, setup):
        model, tokens, targets, *_ = setup
        sched = build_1f1b(2, M, UnitCosts(num_layers=CFG.num_layers))
        with pytest.raises(ValueError, match="SELECTIVE"):
            run_schedule(
                model, sched, tokens, targets, recompute=RecomputeStrategy.SELECTIVE
            )
