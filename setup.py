"""Thin setup.py shim.

The execution environment has no `wheel` package and no network, so PEP
660 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
