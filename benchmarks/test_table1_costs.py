"""Table 1: per-op FLOPs / params / activations of a transformer layer."""

from repro.costmodel.table1 import layer_totals
from repro.experiments import table1


def test_table1_reproduction(benchmark, archive):
    rows = benchmark(table1.run, 1, 4096, 4096)
    archive("table1", rows)
    total = rows[-1]
    b, s, h = 1, 4096, 4096
    bsh = b * s * h
    # Closed forms from the paper's Total column.
    assert total["fwd_flops"] == 4 * bsh * (6 * h + s)
    assert total["bwd_b_flops"] == 4 * bsh * (6 * h + 2 * s)
    assert total["bwd_w_flops"] == 4 * bsh * 6 * h
    assert total["params"] == 12 * h * h + 4 * h
    assert total["activation_elems"] == 16 * bsh
    # Attention is the only op with zero backward-W (non-parameterised).
    attn = next(r for r in rows if r["op"] == "attention")
    assert attn["bwd_w_flops"] == 0 and attn["params"] == 0


def test_totals_scale_quadratically_in_s_for_attention():
    t1 = layer_totals(1, 8192, 4096)
    t2 = layer_totals(1, 16384, 4096)
    attn1 = t1.fwd_flops - 4 * 8192 * 4096 * 6 * 4096
    attn2 = t2.fwd_flops - 4 * 16384 * 4096 * 6 * 4096
    assert attn2 == 4 * attn1
