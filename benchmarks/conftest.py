"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, asserts the
paper's qualitative claims hold, times a representative cell via
pytest-benchmark, and archives the rendered table under
``benchmarks/out/`` so EXPERIMENTS.md can reference concrete numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.report import format_table

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def archive():
    """Write a rows-table (or free text) to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, rows_or_text) -> None:
        text = (
            rows_or_text
            if isinstance(rows_or_text, str)
            else format_table(rows_or_text)
        )
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _write
