"""Table 2: pipeline bubble time and activation memory, formula vs simulated."""

import pytest

from repro.experiments import table2


def test_table2_reproduction(benchmark, archive):
    rows = benchmark(table2.run, 4, 8)
    archive("table2", rows)
    by_name = {r["pipeline"]: r for r in rows}

    # 1F1B and ZB1P bubbles match Eq. 1 / Eq. 3 exactly in the unit world.
    for name in ("1F1B", "ZB1P"):
        r = by_name[name]
        assert r["bubble_simulated"] == pytest.approx(r["bubble_formula"], rel=0.01)
    # ZB1P strictly below 1F1B (the zero-bubble improvement).
    assert by_name["ZB1P"]["bubble_simulated"] < by_name["1F1B"]["bubble_simulated"]
    # HelixPipe's bubble excludes attention: at most the Table 2 bound and
    # far below the layer-wise pipelines once attention counts.
    hx = by_name["HelixPipe"]
    assert hx["bubble_simulated"] <= hx["bubble_formula"] * 1.01
    assert hx["bubble_simulated"] < by_name["ZB1P"]["bubble_simulated"]

    # Memory column: HelixPipe (4bsh m L/p with m=2p -> 8bsh L) is half of
    # ZB1P / 1F1B stage-0 (16bsh L); simulated values include the transient
    # recompute bump, so compare with headroom.
    assert by_name["1F1B"]["peak_stash_simulated"] == pytest.approx(
        by_name["1F1B"]["peak_stash_formula"]
    )
    assert hx["peak_stash_simulated"] < 0.65 * by_name["1F1B"]["peak_stash_simulated"]


def test_helix_bubble_does_not_grow_with_micro_batches():
    bubbles = [
        {r["pipeline"]: r for r in table2.run(4, 8, m)}["HelixPipe"][
            "bubble_simulated"
        ]
        for m in (8, 16, 32)
    ]
    assert max(bubbles) == pytest.approx(min(bubbles), abs=1e-9)
