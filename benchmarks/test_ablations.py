"""Design-choice ablations called out in DESIGN.md.

* QKV-weight shipping (Section 4.2): boundary volume 4bsh vs 2bsh+3h^2.
* Comm-engine duplex: full (InfiniBand default) vs half (NCCL shared-SM
  pathology of Figure 6a).
"""

from repro.core.filo import build_helix_filo
from repro.costmodel import RecomputeStrategy
from repro.experiments.common import Workload
from repro.sim import simulate


def _helix(wl: Workload, ship: bool):
    costs = wl.costs(RecomputeStrategy.WITHOUT_ATTENTION, ship_qkv_weights=ship)
    return build_helix_filo(wl.p, wl.num_micro_batches, costs, fold=2)


def test_qkv_weight_shipping_ablation(benchmark, archive):
    """Shipping the QKV weight halves the heavy pre->attn boundary for
    long sequences and must not slow the pipeline down."""
    wl = Workload.paper("7B", "A800", 4, 131072)

    def run_pair():
        out = {}
        for ship in (False, True):
            r = simulate(_helix(wl, ship), wl.cluster, wl.static_memory())
            out[ship] = r
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        {
            "ship_qkv_weights": ship,
            "iter_time_s": r.makespan,
            "bytes_sent_stage0_gib": r.stages[0].bytes_sent / 2**30,
        }
        for ship, r in results.items()
    ]
    archive("ablation_qkv_shipping", rows)
    # Less data on the wire ...
    assert (
        results[True].stages[0].bytes_sent < results[False].stages[0].bytes_sent
    )
    # ... and never slower end to end.
    assert results[True].makespan <= results[False].makespan * 1.001


def test_duplex_ablation(benchmark, archive):
    """Half-duplex engines (receive delays the following send, Fig. 6a)
    can only hurt; full duplex is the calibrated default."""
    wl = Workload.paper("7B", "A800", 4, 32768)  # comm-sensitive cell
    sched = _helix(wl, True)

    def run_pair():
        return {
            duplex: simulate(sched, wl.cluster, wl.static_memory(), duplex=duplex)
            for duplex in ("full", "half")
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    archive(
        "ablation_duplex",
        [
            {"duplex": d, "iter_time_s": r.makespan,
             "max_comm_blocked_s": max(s.comm_blocked_time for s in r.stages)}
            for d, r in results.items()
        ],
    )
    assert results["half"].makespan >= results["full"].makespan
