"""Figure 4: 1F1B activation memory per stage (13B, 8 stages, A800 80GB)."""

from repro.experiments import fig4_memory_imbalance


def test_fig4_reproduction(benchmark, archive):
    rows = benchmark(fig4_memory_imbalance.run)
    archive("fig4_memory_imbalance", rows)
    at_128k = {r["stage"]: r for r in rows if r["seq_len"] == 131072}
    # Paper: "when sequence length increases to 128k, the activation
    # memory demands at the first and the second stages exceed the 80G
    # GPU memory capacity.  However, later pipeline stages leave large
    # spare memory."
    assert at_128k[0]["exceeds_capacity"]
    assert at_128k[1]["exceeds_capacity"]
    assert not at_128k[4]["exceeds_capacity"]
    assert at_128k[7]["activation_gib"] < 0.2 * at_128k[0]["activation_gib"]
    # Memory decreases monotonically across stages (Eq. 2's p - i factor).
    gib = [at_128k[i]["activation_gib"] for i in range(8)]
    assert gib == sorted(gib, reverse=True)
    # Shorter sequences stay within capacity on every stage.
    assert all(
        not r["exceeds_capacity"] for r in rows if r["seq_len"] <= 65536
    )
