"""Figure 3: layer-component time breakdown vs sequence length (A800)."""

from repro.experiments import fig3_breakdown


def test_fig3_reproduction(benchmark, archive):
    rows = benchmark(fig3_breakdown.run)
    archive("fig3_breakdown", rows)
    shares = {r["seq_len"]: r["attn_share_pct"] for r in rows}
    # Attention share grows monotonically with sequence length...
    lens = sorted(shares)
    assert [shares[s] for s in lens] == sorted(shares[s] for s in lens)
    # ...from a minor slice at 4k to the dominant component at 128k.
    assert shares[4096] < 25.0
    assert shares[131072] > 60.0
    # Per-row sanity: percentages sum to 100.
    for r in rows:
        total = sum(v for k, v in r.items() if k.endswith(("fwd", "bwd")))
        assert abs(total - 100.0) < 1e-6
