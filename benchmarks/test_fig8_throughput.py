"""Figure 8: normalized throughput across the full evaluation grid.

The headline reproduction.  The full 3-models x 2-clusters x 4-seq-lens x
3-pipeline-sizes x 4-methods grid is regenerated once; pytest-benchmark
times a single representative cell (7B / H20 / 128k / p=8).
"""

import pytest

from repro.experiments import fig8_throughput
from repro.experiments.common import Workload, run_all_methods


@pytest.fixture(scope="module")
def grid(request):
    return fig8_throughput.run()


def test_fig8_full_grid(benchmark, archive):
    """Regenerate the whole Figure 8 grid (this is the timed unit) and
    archive both the raw table and the per-cell HelixPipe speedups."""
    rows = benchmark.pedantic(fig8_throughput.run, rounds=1, iterations=1)
    archive("fig8_throughput", rows)
    archive("fig8_speedups", fig8_throughput.speedup_vs_best_baseline(rows))
    assert len(rows) == 3 * 2 * 4 * 3 * 4  # models x gpus x seqs x pps x methods
    # Inline shape checks so --benchmark-only runs still validate the
    # paper's three scalability claims (details in TestPaperClaims).
    for model in ("1.3B", "3B", "7B"):
        assert _speedup(rows, model, "H20", 131072, 8) > 0.10
        assert _speedup(rows, model, "A800", 131072, 8) > 0.05
    assert _speedup(rows, "7B", "A800", 32768, 8) < 0.02


def _speedup(grid, model, gpu, s, p):
    cell = {
        r["method"]: r["tokens_per_s"]
        for r in grid
        if (r["model"], r["gpu"], r["seq_len"], r["pp"]) == (model, gpu, s, p)
    }
    best_baseline = max(v for k, v in cell.items() if k != "helix")
    return cell["helix"] / best_baseline - 1.0


class TestPaperClaims:
    def test_headline_128k_p8_h20(self, grid):
        """Paper: +28% / +20% / +26% for 1.3B / 3B / 7B at 128k, p=8, H20.
        We assert the shape: double-digit gains on every model."""
        for model in ("1.3B", "3B", "7B"):
            assert _speedup(grid, model, "H20", 131072, 8) > 0.10

    def test_headline_128k_p8_a800(self, grid):
        """Paper: +16% / +13% / +13% on A800 -- positive but smaller than H20."""
        for model in ("1.3B", "3B", "7B"):
            sp_a800 = _speedup(grid, model, "A800", 131072, 8)
            sp_h20 = _speedup(grid, model, "H20", 131072, 8)
            assert sp_a800 > 0.05
            assert sp_a800 < sp_h20

    def test_helix_loses_at_32k_on_a800(self, grid):
        """Paper Section 5.2: 1F1B is best at 32k on A800 (comm cannot be
        overlapped, Fig. 9) -- HelixPipe shows no gain there."""
        assert _speedup(grid, "7B", "A800", 32768, 8) < 0.02

    def test_gain_grows_with_sequence_length(self, grid):
        """First scalability axis: longer sequences -> larger advantage."""
        for gpu in ("H20", "A800"):
            sps = [_speedup(grid, "7B", gpu, s, 8) for s in (32768, 65536, 98304, 131072)]
            assert sps[-1] > sps[0]
            assert sps == sorted(sps)

    def test_consistent_across_model_scales(self, grid):
        """Second axis: the 128k/H20 advantage holds for all three models."""
        sps = [_speedup(grid, m, "H20", 131072, 8) for m in ("1.3B", "3B", "7B")]
        assert min(sps) > 0.10

    def test_gain_grows_with_pipeline_size(self, grid):
        """Third axis (weak scaling): larger p -> bigger bubble -> bigger
        HelixPipe advantage (except the 32k/A800 corner)."""
        sps = [_speedup(grid, "7B", "H20", 131072, p) for p in (2, 4, 8)]
        assert sps == sorted(sps)

    def test_adapipe_no_better_than_1f1b(self, grid):
        """Paper: 'its computation efficiency is no better than 1F1B in
        all cases' at long sequence lengths."""
        for r in grid:
            if r["method"] != "adapipe" or r["seq_len"] < 98304:
                continue
            f1 = next(
                x["tokens_per_s"]
                for x in grid
                if x["method"] == "1f1b"
                and (x["model"], x["gpu"], x["seq_len"], x["pp"])
                == (r["model"], r["gpu"], r["seq_len"], r["pp"])
            )
            assert r["tokens_per_s"] <= f1 * 1.02


def test_benchmark_representative_cell(benchmark):
    wl = Workload.paper("7B", "H20", 8, 131072)

    def cell():
        return run_all_methods(wl)

    results = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert results["helix"].makespan < results["1f1b"].makespan
