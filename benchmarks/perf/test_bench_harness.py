"""The `repro bench` harness itself (schema, equivalence, gating).

Runs the smoke workload once (sub-second) and checks the payload a CI
`bench-smoke` job and future-PR comparisons rely on: the JSON schema,
the per-phase breakdown, the pruned-vs-exhaustive and
incremental-vs-full equivalence flags, and the regression gate of
``compare_bench`` in both directions -- end to end and per phase.
"""

import copy
import json

import pytest

from repro.perf.bench import (
    bench_workload,
    compare_bench,
    default_out_name,
    run_bench,
    save_bench,
)


@pytest.fixture(scope="module")
def payload():
    return run_bench(smoke=True, repeats=1)


class TestPayload:
    def test_schema(self, payload):
        assert payload["schema"] == 2
        assert payload["mode"] == "smoke"
        for key in ("created", "git_rev", "python", "machine"):
            assert isinstance(payload[key], str)
        metrics = payload["metrics"]
        for name in (
            "candidates_per_s",
            "sweep_s",
            "build_candidates_per_s",
            "simulate_candidates_per_s",
            "exhaustive_candidates_per_s",
            "exhaustive_sweep_s",
            "prune_speedup",
            "noninc_sweep_s",
            "incremental_speedup",
            "warm_sweep_s",
            "single_sim_s",
        ):
            assert metrics[name] > 0.0, name

    def test_workload_is_the_pinned_smoke_grid(self, payload):
        wl = bench_workload(smoke=True)
        assert payload["workload"] == {
            "model": wl.model.name,
            "gpu": wl.cluster.node.gpu.name,
            "p": wl.p,
            "seq_len": wl.seq_len,
            "micro_batch": wl.micro_batch,
            "num_micro_batches": wl.num_micro_batches,
        }

    def test_counts_partition_the_grid(self, payload):
        counts = payload["counts"]
        assert counts["simulated"] + counts["pruned"] == counts["candidates"]
        assert counts["pruned"] > 0  # pruning engaged on the smoke grid

    def test_phases_describe_the_fastest_sweep(self, payload):
        phases = payload["phases"]
        for name in ("build_s", "simulate_s", "bound_s", "cache_s", "eval_s"):
            assert phases[name] >= 0.0, name
        # Phase walls nest inside the end-to-end sweep wall.
        assert phases["eval_s"] <= payload["metrics"]["sweep_s"] * 1.05
        assert phases["built"] > 0
        assert phases["simulated"] > 0
        assert phases["incremental_fallbacks"] == 0

    def test_equivalence_flags(self, payload):
        eq = payload["equivalence"]
        assert eq["pruned_best_equals_exhaustive"] is True
        assert eq["incremental_best_equals_full"] is True
        assert eq["best_label"]
        assert eq["best_tokens_per_s"] > 0.0

    def test_round_trips_as_json(self, payload, tmp_path):
        path = tmp_path / default_out_name(smoke=True)
        save_bench(payload, str(path))
        assert json.loads(path.read_text()) == payload


class TestProfile:
    def test_profile_section(self):
        payload = run_bench(smoke=True, repeats=1, profile=True, profile_top=5)
        prof = payload["profile"]
        assert prof["sort"] == "cumulative"
        assert 1 <= len(prof["top"]) <= 5
        for entry in prof["top"]:
            assert entry["cumtime_s"] >= entry["tottime_s"] >= 0.0
            assert entry["ncalls"] >= 1
            assert isinstance(entry["function"], str)
        # The sweep entry point dominates cumulative time.
        assert any("autotune" in e["function"] for e in prof["top"])

    def test_profile_off_by_default(self, payload):
        assert "profile" not in payload


class TestCompare:
    def test_self_compare_is_clean(self, payload):
        assert compare_bench(payload, payload) == []

    @pytest.mark.parametrize(
        "metric",
        [
            "candidates_per_s",
            "build_candidates_per_s",
            "simulate_candidates_per_s",
        ],
    )
    def test_regression_beyond_threshold_fails(self, payload, metric):
        slow = copy.deepcopy(payload)
        slow["metrics"][metric] *= 0.5
        failures = compare_bench(slow, payload, max_regression=0.25)
        assert any(metric in f for f in failures)

    def test_regression_within_threshold_passes(self, payload):
        slow = copy.deepcopy(payload)
        slow["metrics"]["candidates_per_s"] *= 0.9
        assert compare_bench(slow, payload, max_regression=0.25) == []

    def test_improvement_passes(self, payload):
        fast = copy.deepcopy(payload)
        fast["metrics"]["candidates_per_s"] *= 10.0
        assert compare_bench(fast, payload) == []

    def test_mode_mismatch_fails(self, payload):
        full = copy.deepcopy(payload)
        full["mode"] = "full"
        assert any(
            "mode" in f for f in compare_bench(full, payload)
        )

    def test_broken_equivalence_fails(self, payload):
        broken = copy.deepcopy(payload)
        broken["equivalence"]["pruned_best_equals_exhaustive"] = False
        assert any(
            "exhaustive best" in f for f in compare_bench(broken, payload)
        )

    def test_broken_incremental_equivalence_fails(self, payload):
        broken = copy.deepcopy(payload)
        broken["equivalence"]["incremental_best_equals_full"] = False
        assert any(
            "full-resim best" in f for f in compare_bench(broken, payload)
        )

    def test_schema1_baseline_without_phase_metrics_is_skipped(self, payload):
        old = copy.deepcopy(payload)
        old["schema"] = 1
        del old["metrics"]["build_candidates_per_s"]
        del old["metrics"]["simulate_candidates_per_s"]
        del old["equivalence"]["incremental_best_equals_full"]
        # Gating a schema-2 run against a schema-1 baseline only checks
        # the metrics both payloads carry.
        assert compare_bench(payload, old) == []


def test_committed_smoke_baseline_matches_schema():
    """The CI gate's baseline stays loadable and structurally current."""
    import pathlib

    path = pathlib.Path(__file__).parent / "BENCH_smoke_baseline.json"
    baseline = json.loads(path.read_text())
    assert baseline["schema"] == 2
    assert baseline["mode"] == "smoke"
    for name in (
        "candidates_per_s",
        "build_candidates_per_s",
        "simulate_candidates_per_s",
    ):
        assert baseline["metrics"][name] > 0.0, name
    assert baseline["equivalence"]["pruned_best_equals_exhaustive"] is True
    assert baseline["equivalence"]["incremental_best_equals_full"] is True
