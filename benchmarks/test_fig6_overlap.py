"""Figure 6: two-fold FILO hides communication the naive schedule exposes."""

from repro.experiments import fig6_overlap


def test_fig6_reproduction(benchmark, archive):
    rows = benchmark(fig6_overlap.run)
    archive("fig6_overlap", rows)
    by_comm = {r["comm_time"]: r for r in rows}
    # Free communication: both schedules equivalent-ish.
    base = by_comm[0.0]
    assert abs(base["naive_makespan"] - base["twofold_makespan"]) <= 0.2 * min(
        base["naive_makespan"], base["twofold_makespan"]
    )
    # Moderate communication (below attention time = 3 units): the
    # two-fold schedule wins and exposes less blocked time.
    for comm in (1.0, 2.0):
        r = by_comm[comm]
        assert r["twofold_makespan"] < r["naive_makespan"]
        assert r["twofold_comm_blocked"] < r["naive_comm_blocked"]
    # Two-fold stays near its zero-comm makespan while overlappable.
    assert by_comm[1.0]["twofold_makespan"] <= base["twofold_makespan"] * 1.15
    # Beyond the attention time the delay becomes exposed for both.
    assert by_comm[3.0]["twofold_makespan"] > base["twofold_makespan"] * 1.1
