"""Figures 2, 5, 7: schedule structure in the paper's unit-time world."""

import pytest

from repro.experiments import fig2_fig7_schedules, fig5_partition


def test_fig5_attention_parallel_beats_layerwise(benchmark, archive):
    rows = benchmark(fig5_partition.run)
    archive("fig5_partition", rows)
    by = {r["partition"]: r for r in rows}
    # Figure 5: attention parallel partition finishes the two micro
    # batches earlier by running their attentions on different stages.
    assert by["attention-parallel"]["makespan"] < by["layer-wise"]["makespan"]


def test_fig2_fig7_reproduction(benchmark, archive):
    rows = benchmark(fig2_fig7_schedules.run)
    archive("fig2_fig7_schedules", rows)
    archive("fig2_fig7_timelines", fig2_fig7_schedules.render())
    by = {r["figure"]: r for r in rows}
    # Fig 2: HelixPipe FILO has a smaller bubble than 1F1B on the same
    # workload (4 micro batches, 8 layers, 4 stages).
    assert (
        by["fig2b_helix_filo"]["mean_bubble"] < by["fig2a_1f1b"]["mean_bubble"]
    )
    assert by["fig2b_helix_filo"]["makespan"] < by["fig2a_1f1b"]["makespan"]
    # Fig 2b exact packing: bubble = (p-1) * (fwd+bwd of pre+post) = 18.
    assert by["fig2b_helix_filo"]["mean_bubble"] == pytest.approx(18.0)
    # Fig 7: with free communication the two-fold trades up to 2x the
    # naive bubble for overlap capacity (Section 4.5).
    assert (
        by["fig7b_twofold_filo"]["mean_bubble"]
        <= 2 * by["fig7a_naive_filo"]["mean_bubble"] + 1e-9
    )
