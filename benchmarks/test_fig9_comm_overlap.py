"""Figure 9: decoupled layer compute vs p2p communication time (7B)."""

from repro.experiments import fig9_comm


def test_fig9_reproduction(benchmark, archive):
    rows = benchmark(fig9_comm.run)
    archive("fig9_comm", rows)
    by = {(r["gpu"], r["seq_len"]): r for r in rows}

    # Paper Section 5.3: on A800 at 32k the attention computation is
    # faster than the inter-node communication -> not overlappable; every
    # other (cluster, seq) cell is overlappable.
    assert not by[("A800", 32768)]["overlappable"]
    for key, r in by.items():
        if key != ("A800", 32768):
            assert r["overlappable"], key

    # H20 comm is half the A800 comm time (2x bandwidth), and attention
    # halves going H20 -> A800 (2x compute).
    for s in (32768, 65536, 98304, 131072):
        assert by[("H20", s)]["comm_ms"] < by[("A800", s)]["comm_ms"]
        assert by[("A800", s)]["attention_fwd_ms"] < by[("H20", s)]["attention_fwd_ms"]

    # Attention grows quadratically; comm linearly.
    h = by[("H20", 131072)], by[("H20", 32768)]
    assert h[0]["attention_fwd_ms"] / h[1]["attention_fwd_ms"] > 10
    assert h[0]["comm_ms"] / h[1]["comm_ms"] < 5
