"""Figure 11: recomputation-without-attention ablation (3B, 4 stages)."""

from repro.experiments import fig11_recompute


def test_fig11_reproduction(benchmark, archive):
    rows = benchmark(fig11_recompute.run)
    archive("fig11_recompute", rows)
    by = {(r["gpu"], r["seq_len"]): r for r in rows}

    for (gpu, s), r in by.items():
        # Recompute always costs some throughput...
        assert r["throughput_ratio"] <= 1.0 + 1e-9
        # ...but no more than ~20% (paper Section 5.5).
        assert r["throughput_ratio"] > 0.75
        # And it reduces the activation footprint on every rank.
        for stage in range(4):
            assert r[f"mem_rc_rank{stage}_gib"] < r[f"mem_norc_rank{stage}_gib"]

    # The throughput gap shrinks as the sequence grows (attention
    # dominates; pre+post recompute becomes marginal).
    for gpu in ("H20", "A800"):
        ratios = [by[(gpu, s)]["throughput_ratio"] for s in sorted(
            {k[1] for k in by if k[0] == gpu}
        )]
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 0.93  # near zero gap at 128k

    # Memory saving is large at long sequences (the 4x of Section 4.5 on
    # the activation share; model states dilute it in the total).
    r = by[("H20", 131072)]
    assert r["mem_norc_rank0_gib"] / r["mem_rc_rank0_gib"] > 2.0
