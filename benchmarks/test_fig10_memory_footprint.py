"""Figure 10: per-stage max allocated memory (3B, 128k, 8 stages)."""

from repro.experiments import fig10_memory_footprint


def test_fig10_reproduction(benchmark, archive):
    rows = benchmark(fig10_memory_footprint.run)
    archive("fig10_memory_footprint", rows)
    summary = {r["method"]: r for r in fig10_memory_footprint.summarize(rows)}
    archive("fig10_summary", list(summary.values()))

    # Paper: "HelixPipe costs the lowest peak memory usage, and it shows
    # the most balanced memory footprint across the eight pipeline stages."
    assert summary["helix"]["max_gib"] == min(s["max_gib"] for s in summary.values())
    assert summary["helix"]["imbalance"] == min(
        s["imbalance"] for s in summary.values()
    )
    # 1F1B consumes a skewed amount across stages.
    assert summary["1f1b"]["imbalance"] > 2.5
    # ZB1P incurs extremely high memory at the final stage (fp32 logits
    # stash for the delayed head backward-W).
    zb = {r["stage"]: r["peak_gib"] for r in rows if r["method"] == "zb1p"}
    assert zb[7] == max(zb.values())
    f1 = {r["stage"]: r["peak_gib"] for r in rows if r["method"] == "1f1b"}
    assert zb[7] > f1[7] * 1.5
    # ZB1P is otherwise flat relative to 1F1B's skew (Eq. 4 vs Eq. 2):
    # its non-final stages all sit near 1F1B's worst case.
    assert min(zb[i] for i in range(7)) > 0.5 * f1[0]


def test_helix_balance_holds_at_other_seq_lens():
    rows = fig10_memory_footprint.run(seq_len=65536)
    summary = {r["method"]: r for r in fig10_memory_footprint.summarize(rows)}
    assert summary["helix"]["imbalance"] < 1.5
