"""Section 4.4.2: chunked MLP mitigates allocator fragmentation."""

from repro.experiments import chunked_mlp


def test_chunked_mlp_reproduction(benchmark, archive):
    rows = benchmark(chunked_mlp.run)
    archive("chunked_mlp_fragmentation", rows)
    by = {r["variant"]: r for r in rows}

    # Chunked MLP lowers peak reserved memory and removes the
    # irregular-size fragmentation at peak.
    assert by["chunked"]["peak_reserved_gib"] < by["unchunked"]["peak_reserved_gib"]
    assert by["unchunked"]["frag_at_peak_gib"] > 0
    assert (
        by["chunked"]["frag_at_peak_gib"]
        <= 0.25 * by["unchunked"]["frag_at_peak_gib"]
    )
    # Expandable segments (Section 5.1 mitigation) help the unchunked
    # case but chunking is still at least as good.
    assert (
        by["unchunked+expandable"]["peak_reserved_gib"]
        <= by["unchunked"]["peak_reserved_gib"]
    )
    assert (
        by["chunked"]["peak_reserved_gib"]
        <= by["unchunked+expandable"]["peak_reserved_gib"]
    )
